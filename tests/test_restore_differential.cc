/**
 * @file
 * Full vs working-set-aware (REAP-style) restore differential.
 *
 * The tentpole invariant of the lazy-restore path: a restore that
 * prefetches only the recorded working set and materialises every
 * other snapshot page on first touch is ARCHITECTURALLY INVISIBLE.
 * Verified here by running the same experiment under SVBENCH_REAP=0
 * and =1 — on both ISAs and both emulation tiers — and asserting
 * byte-identity of the guest-visible latencies, the full guest stats
 * snapshot, and a re-taken checkpoint of the final system state.
 * Plus: CoW sharing across concurrently restored runners, and the
 * instance-pool lease contract that makes pool density observable as
 * live page refcounts.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/checkpoint_store.hh"
#include "core/experiment.hh"
#include "load/instance_pool.hh"
#include "workloads/workloads.hh"

using namespace svb;

namespace
{

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

ClusterConfig
standaloneConfig(IsaId isa, bool fast_warm)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.system.fastWarm = fast_warm;
    cfg.startDb = false;
    cfg.startMemcached = false;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Redirect the global CheckpointStore to a private directory for the
 *  duration of one test, deleting it (and any snapshots) afterwards. */
struct TempCheckpointDir
{
    explicit TempCheckpointDir(std::string d) : dir(std::move(d))
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    ~TempCheckpointDir()
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    std::string dir;
};

/** Pin SVBENCH_REAP for one scope and restore the prior value after.
 *  The gate is latched at System construction, so it must be set
 *  BEFORE an ExperimentRunner is built. */
struct ReapEnv
{
    explicit ReapEnv(bool on)
    {
        const char *prev = std::getenv("SVBENCH_REAP");
        had = prev != nullptr;
        if (had)
            saved = prev;
        setenv("SVBENCH_REAP", on ? "1" : "0", 1);
    }
    ~ReapEnv()
    {
        if (had)
            setenv("SVBENCH_REAP", saved.c_str(), 1);
        else
            unsetenv("SVBENCH_REAP");
    }
    bool had = false;
    std::string saved;
};

/** Serialise the post-run system state to bytes (the strongest
 *  identity surface: every architectural bit, deterministic order). */
std::string
stateBytes(ExperimentRunner &runner, const std::string &dir,
           const std::string &tag)
{
    const std::string path = dir + "/" + tag + ".state";
    runner.cluster().system().saveCheckpoint().saveToFile(path);
    return slurp(path);
}

/**
 * The differential proper: prepare once (publishing the snapshot and
 * its recorded working set), then restore-and-measure under full and
 * under REAP mode. Everything guest-visible must match byte for byte,
 * while the host-side page counters prove the REAP run really did
 * take the lazy path.
 */
void
checkFullVsReap(IsaId isa, bool fast_warm, const std::string &dir)
{
    TempCheckpointDir ckpts(dir);
    std::filesystem::create_directories(dir);
    const FunctionSpec spec = specFor("fibonacci-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
    const ClusterConfig cfg = standaloneConfig(isa, fast_warm);

    // Prepare + publish (records the cold request's working set).
    {
        ReapEnv env(false);
        ExperimentRunner prep(cfg);
        ASSERT_TRUE(prep.runFunctionEmu(spec, impl).ok);
    }

    EmuResult full;
    std::map<std::string, double> snapFull;
    std::string bytesFull;
    {
        ReapEnv env(false);
        ExperimentRunner runner(cfg);
        full = runner.runFunctionEmu(spec, impl);
        ASSERT_TRUE(full.ok);
        EXPECT_FALSE(runner.cluster().system().reapEnabled());
        EXPECT_EQ(runner.cluster().system().phys().lazyRestores(), 0u);
        snapFull = runner.cluster().system().stats().snapshotAll();
        bytesFull = stateBytes(runner, dir, "full");
    }

    EmuResult reap;
    std::map<std::string, double> snapReap;
    std::string bytesReap;
    {
        ReapEnv env(true);
        ExperimentRunner runner(cfg);
        reap = runner.runFunctionEmu(spec, impl);
        ASSERT_TRUE(reap.ok);
        PhysMemory &phys = runner.cluster().system().phys();
        // The lazy path must actually have been exercised: at least
        // one working-set prefetch, and not every image page resident.
        EXPECT_GE(phys.lazyRestores(), 1u);
        EXPECT_GT(phys.prefetchedPages(), 0u);
        EXPECT_GT(phys.imagePages(), 0u);
        snapReap = runner.cluster().system().stats().snapshotAll();
        bytesReap = stateBytes(runner, dir, "reap");
    }

    EXPECT_EQ(full.coldNs, reap.coldNs) << "cold latency diverged";
    EXPECT_EQ(full.warmNs, reap.warmNs) << "warm latency diverged";
    EXPECT_EQ(snapFull, snapReap) << "guest stats snapshot diverged";
    ASSERT_FALSE(bytesFull.empty());
    EXPECT_EQ(bytesFull, bytesReap)
        << "post-run architectural state diverged";
}

} // namespace

TEST(RestoreDifferential, FullVsReapRiscvFastWarm)
{
    checkFullVsReap(IsaId::Riscv, true, "reapdiff_rv_fw");
}

TEST(RestoreDifferential, FullVsReapRiscvAtomic)
{
    checkFullVsReap(IsaId::Riscv, false, "reapdiff_rv_at");
}

TEST(RestoreDifferential, FullVsReapCx86FastWarm)
{
    checkFullVsReap(IsaId::Cx86, true, "reapdiff_cx_fw");
}

TEST(RestoreDifferential, FullVsReapCx86Atomic)
{
    checkFullVsReap(IsaId::Cx86, false, "reapdiff_cx_at");
}

TEST(RestoreDifferential, ConcurrentRestoredRunnersShareButDoNotLeak)
{
    // Two runners restored from the same snapshot run back to back
    // while both are alive: the shared CoW image must serve both, and
    // the first runner's guest writes must never leak into the second
    // runner's restore.
    TempCheckpointDir ckpts("reapdiff_cow");
    const FunctionSpec spec = specFor("aes-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
    const ClusterConfig cfg = standaloneConfig(IsaId::Riscv, true);

    ReapEnv env(true);
    {
        ExperimentRunner prep(cfg);
        ASSERT_TRUE(prep.runFunctionEmu(spec, impl).ok);
    }
    ExperimentRunner a(cfg);
    const EmuResult ra = a.runFunctionEmu(spec, impl);
    ASSERT_TRUE(ra.ok);
    EXPECT_GE(a.cluster().system().phys().lazyRestores(), 1u);

    // Runner a stays alive (its materialised pages and image refs
    // included) while b restores from the same fingerprint.
    ExperimentRunner b(cfg);
    const EmuResult rb = b.runFunctionEmu(spec, impl);
    ASSERT_TRUE(rb.ok);
    EXPECT_GE(b.cluster().system().phys().lazyRestores(), 1u);
    EXPECT_EQ(ra.coldNs, rb.coldNs);
    EXPECT_EQ(ra.warmNs, rb.warmNs);
    EXPECT_EQ(a.cluster().system().stats().snapshotAll(),
              b.cluster().system().stats().snapshotAll());
}

TEST(RestoreDifferential, PoolLeaseReleasesPagesWithInstance)
{
    // The pool-density story: an instance's snapshot pages live
    // exactly as long as its pool slot. The lease is dropped at TTL
    // expiry, kill() and evictAll(); each drop must make the pages
    // reclaimable (observable via PageStore::liveUniquePages()).
    PageStore &pages = PageStore::global();
    pages.resetForTest();

    // A small image with two distinct non-zero pages.
    PhysMemory src(4 * snapshotPageBytes);
    src.write64(0, 0x11);
    src.write64(2 * snapshotPageBytes, 0x22);
    Checkpoint cp;
    src.serializeState("m.", cp);

    load::PoolConfig pc;
    pc.policy = load::KeepAlivePolicy::FixedTtl;
    pc.maxInstances = 4;
    pc.keepAliveNs = 1000;
    load::InstancePool pool(pc);

    // TTL expiry drops the lease.
    {
        auto img = PhysMemory::buildImage("m.", cp);
        EXPECT_EQ(pages.liveUniquePages(), 2u);
        const auto p = pool.acquire(1, 0);
        EXPECT_TRUE(p.cold);
        pool.setLease(p.slot, img);
        pool.release(p.slot, 100);
        img.reset(); // the pool lease is now the only holder
        EXPECT_TRUE(pool.slotHasLease(p.slot));
        EXPECT_EQ(pages.liveUniquePages(), 2u);
        // Idle for exactly keepAliveNs: the boundary expires (the TTL
        // is inclusive), and the pages die with the instance.
        const auto probe = pool.acquire(2, 100 + pc.keepAliveNs);
        EXPECT_EQ(pages.liveUniquePages(), 0u);
        pool.release(probe.slot, 100 + pc.keepAliveNs + 50);
    }

    // kill() (instance crash, in place of release()) drops the lease
    // immediately.
    {
        auto img = PhysMemory::buildImage("m.", cp);
        const auto p = pool.acquire(3, 5000);
        pool.setLease(p.slot, img);
        img.reset();
        EXPECT_EQ(pages.liveUniquePages(), 2u);
        pool.kill(p.slot, 5100);
        EXPECT_EQ(pages.liveUniquePages(), 0u);
    }

    // evictAll() (scale-to-zero) drops every lease.
    {
        auto img = PhysMemory::buildImage("m.", cp);
        const auto p1 = pool.acquire(4, 10000);
        const auto p2 = pool.acquire(5, 10000);
        pool.setLease(p1.slot, img);
        pool.setLease(p2.slot, img);
        pool.release(p1.slot, 10100);
        pool.release(p2.slot, 10100);
        img.reset();
        EXPECT_EQ(pages.liveUniquePages(), 2u);
        pool.evictAll(10200);
        EXPECT_EQ(pages.liveUniquePages(), 0u);
    }

    // Two instances of the same image share pages: dropping one lease
    // keeps them alive, dropping the last frees them.
    {
        auto img = PhysMemory::buildImage("m.", cp);
        const auto p1 = pool.acquire(6, 20000);
        const auto p2 = pool.acquire(7, 20000);
        pool.setLease(p1.slot, img);
        pool.setLease(p2.slot, img);
        img.reset();
        pool.kill(p1.slot, 20100);
        EXPECT_EQ(pages.liveUniquePages(), 2u) << "shared pages freed "
                                                  "while a sibling lease "
                                                  "was still live";
        pool.kill(p2.slot, 20200);
        EXPECT_EQ(pages.liveUniquePages(), 0u);
    }
}
