/**
 * @file
 * Property sweeps:
 *  - decoder robustness: random byte windows must decode to something
 *    self-consistent or cleanly invalid — never crash or lie about
 *    lengths;
 *  - whole-suite invariants: every function of the evaluation set,
 *    driven end-to-end, satisfies cold > warm > 0.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "isa/cx86/decoder.hh"
#include "isa/disasm.hh"
#include "isa/riscv/decoder.hh"
#include "sim/rng.hh"
#include "workloads/workloads.hh"

using namespace svb;

TEST(DecoderFuzz, RiscvNeverCrashesAndIsConsistent)
{
    Rng rng(0xdec0de);
    for (int i = 0; i < 200'000; ++i) {
        const auto word = uint32_t(rng.next());
        const StaticInst inst = riscv::decode(word);
        if (!inst.valid)
            continue;
        ASSERT_EQ(inst.length, 4u);
        ASSERT_GE(inst.numUops, 1u);
        ASSERT_LE(inst.numUops, maxUopsPerInst);
        // Control summary flags must be consistent with the uops.
        bool has_ctrl = false;
        for (unsigned u = 0; u < inst.numUops; ++u)
            has_ctrl |= inst.uops[u].isControl();
        ASSERT_EQ(inst.isControl, has_ctrl);
        // Disassembly of any valid instruction must not throw.
        ASSERT_FALSE(disassemble(inst, IsaId::Riscv, 0x1000).empty());
    }
}

TEST(DecoderFuzz, Cx86NeverCrashesAndRespectsWindow)
{
    Rng rng(0xc0de);
    uint8_t window[16];
    for (int i = 0; i < 200'000; ++i) {
        for (auto &b : window)
            b = uint8_t(rng.next());
        const size_t avail = 1 + rng.nextBounded(sizeof(window));
        const StaticInst inst = cx86::decode(window, avail);
        if (!inst.valid)
            continue;
        ASSERT_LE(size_t(inst.length), avail)
            << "decoded past the window";
        ASSERT_GE(inst.numUops, 1u);
        ASSERT_LE(inst.numUops, maxUopsPerInst);
        for (unsigned u = 0; u < inst.numUops; ++u) {
            const MicroOp &uop = inst.uops[u];
            if (uop.rd != invalidReg) {
                ASSERT_LT(uop.rd, cx::numRegs);
            }
            if (uop.rs1 != invalidReg) {
                ASSERT_LT(uop.rs1, cx::numRegs);
            }
            if (uop.rs2 != invalidReg) {
                ASSERT_LT(uop.rs2, cx::numRegs);
            }
            if (uop.isMem()) {
                ASSERT_TRUE(uop.memSize == 1 || uop.memSize == 2 ||
                            uop.memSize == 4 || uop.memSize == 8);
            }
        }
        ASSERT_FALSE(disassemble(inst, IsaId::Cx86).empty());
    }
}

namespace
{

class SuiteSweepTest : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(SuiteSweepTest, EveryFunctionHasColdGreaterThanWarm)
{
    const auto specs = workloads::allFunctions();
    ASSERT_LT(size_t(GetParam()), specs.size());
    const FunctionSpec &spec = specs[size_t(GetParam())];

    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.startDb = spec.usesDb;
    cfg.startMemcached = spec.usesMemcached;
    ExperimentRunner runner(cfg);
    // Emulation mode keeps the whole 21-function sweep quick while
    // still driving every container end to end.
    const EmuResult res = runner.runFunctionEmu(
        spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(res.ok) << spec.name;
    EXPECT_GT(res.warmNs, 0u) << spec.name;
    EXPECT_GT(res.coldNs, res.warmNs) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, SuiteSweepTest,
                         ::testing::Range(0, 21));
