/**
 * @file
 * Property sweeps:
 *  - decoder robustness: random byte windows must decode to something
 *    self-consistent or cleanly invalid — never crash or lie about
 *    lengths;
 *  - whole-suite invariants: every function of the evaluation set,
 *    driven end-to-end, satisfies cold > warm > 0;
 *  - latency-histogram invariants: bucket boundaries tile the value
 *    space, percentiles bound the true order statistic within one
 *    sub-bucket, and merge() is exactly equivalent to a single pass.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/experiment.hh"
#include "isa/cx86/decoder.hh"
#include "isa/disasm.hh"
#include "isa/riscv/decoder.hh"
#include "load/histogram.hh"
#include "sim/rng.hh"
#include "workloads/workloads.hh"

using namespace svb;

TEST(DecoderFuzz, RiscvNeverCrashesAndIsConsistent)
{
    Rng rng(0xdec0de);
    for (int i = 0; i < 200'000; ++i) {
        const auto word = uint32_t(rng.next());
        const StaticInst inst = riscv::decode(word);
        if (!inst.valid)
            continue;
        ASSERT_EQ(inst.length, 4u);
        ASSERT_GE(inst.numUops, 1u);
        ASSERT_LE(inst.numUops, maxUopsPerInst);
        // Control summary flags must be consistent with the uops.
        bool has_ctrl = false;
        for (unsigned u = 0; u < inst.numUops; ++u)
            has_ctrl |= inst.uops[u].isControl();
        ASSERT_EQ(inst.isControl, has_ctrl);
        // Disassembly of any valid instruction must not throw.
        ASSERT_FALSE(disassemble(inst, IsaId::Riscv, 0x1000).empty());
    }
}

TEST(DecoderFuzz, Cx86NeverCrashesAndRespectsWindow)
{
    Rng rng(0xc0de);
    uint8_t window[16];
    for (int i = 0; i < 200'000; ++i) {
        for (auto &b : window)
            b = uint8_t(rng.next());
        const size_t avail = 1 + rng.nextBounded(sizeof(window));
        const StaticInst inst = cx86::decode(window, avail);
        if (!inst.valid)
            continue;
        ASSERT_LE(size_t(inst.length), avail)
            << "decoded past the window";
        ASSERT_GE(inst.numUops, 1u);
        ASSERT_LE(inst.numUops, maxUopsPerInst);
        for (unsigned u = 0; u < inst.numUops; ++u) {
            const MicroOp &uop = inst.uops[u];
            if (uop.rd != invalidReg) {
                ASSERT_LT(uop.rd, cx::numRegs);
            }
            if (uop.rs1 != invalidReg) {
                ASSERT_LT(uop.rs1, cx::numRegs);
            }
            if (uop.rs2 != invalidReg) {
                ASSERT_LT(uop.rs2, cx::numRegs);
            }
            if (uop.isMem()) {
                ASSERT_TRUE(uop.memSize == 1 || uop.memSize == 2 ||
                            uop.memSize == 4 || uop.memSize == 8);
            }
        }
        ASSERT_FALSE(disassemble(inst, IsaId::Cx86).empty());
    }
}

namespace
{

class SuiteSweepTest : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(SuiteSweepTest, EveryFunctionHasColdGreaterThanWarm)
{
    const auto specs = workloads::allFunctions();
    ASSERT_LT(size_t(GetParam()), specs.size());
    const FunctionSpec &spec = specs[size_t(GetParam())];

    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.startDb = spec.usesDb;
    cfg.startMemcached = spec.usesMemcached;
    ExperimentRunner runner(cfg);
    // Emulation mode keeps the whole 21-function sweep quick while
    // still driving every container end to end.
    const EmuResult res = runner.runFunctionEmu(
        spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(res.ok) << spec.name;
    EXPECT_GT(res.warmNs, 0u) << spec.name;
    EXPECT_GT(res.coldNs, res.warmNs) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, SuiteSweepTest,
                         ::testing::Range(0, 21));

TEST(HistogramProperty, BucketsTileTheValueSpace)
{
    using load::LatencyHistogram;
    // Consecutive buckets must cover [0, 2^64) with no gaps and no
    // overlaps, and every probe value must land in the bucket whose
    // [low, high] range contains it.
    const size_t n = LatencyHistogram::numBuckets();
    for (size_t i = 1; i < n; ++i) {
        ASSERT_EQ(LatencyHistogram::bucketLow(i),
                  LatencyHistogram::bucketHigh(i - 1) + 1)
            << "gap/overlap at bucket " << i;
    }
    EXPECT_EQ(LatencyHistogram::bucketLow(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketHigh(n - 1), ~uint64_t(0));

    Rng rng(0x815);
    for (int i = 0; i < 100'000; ++i) {
        // Bit-width-uniform probes so every octave gets exercised.
        const unsigned bits = 1 + unsigned(rng.nextBounded(64));
        const uint64_t v =
            bits == 64 ? rng.next() : rng.next() >> (64 - bits);
        const size_t idx = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(idx, n);
        ASSERT_GE(v, LatencyHistogram::bucketLow(idx));
        ASSERT_LE(v, LatencyHistogram::bucketHigh(idx));
    }
    // Boundary values in the exact region map to themselves.
    for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
        const size_t idx = LatencyHistogram::bucketIndex(v);
        EXPECT_EQ(LatencyHistogram::bucketLow(idx), v);
        EXPECT_EQ(LatencyHistogram::bucketHigh(idx), v);
    }
}

TEST(HistogramProperty, PercentileBoundsTheSortedReference)
{
    using load::LatencyHistogram;
    Rng rng(0x9e11);
    for (int trial = 0; trial < 20; ++trial) {
        LatencyHistogram h;
        std::vector<uint64_t> samples;
        const size_t n = 100 + rng.nextBounded(5000);
        for (size_t i = 0; i < n; ++i) {
            // Log-uniform latencies spanning ns to tens of seconds.
            const unsigned bits = 1 + unsigned(rng.nextBounded(35));
            const uint64_t v = rng.next() >> (64 - bits);
            samples.push_back(v);
            h.record(v);
        }
        std::sort(samples.begin(), samples.end());
        for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
            const size_t rank =
                p == 0.0 ? 0
                         : std::min<size_t>(
                               n - 1,
                               size_t(std::ceil(p / 100.0 * double(n))) -
                                   1);
            const uint64_t ref = samples[rank];
            const uint64_t est = h.percentile(p);
            // Estimate is the bucket's inclusive upper bound: never
            // below the true order statistic, and within one
            // sub-bucket width above it.
            ASSERT_GE(est, ref) << "p=" << p << " n=" << n;
            const double maxErr =
                double(ref) / double(LatencyHistogram::kSubBuckets) + 1.0;
            ASSERT_LE(double(est - ref), maxErr) << "p=" << p << " n=" << n;
        }
        EXPECT_EQ(h.maxValue(), samples.back());
        EXPECT_EQ(h.minValue(), samples.front());
    }
}

TEST(HistogramProperty, MergeEqualsSinglePass)
{
    using load::LatencyHistogram;
    Rng rng(0x3e6e);
    for (int trial = 0; trial < 20; ++trial) {
        // Split one sample stream across k partial histograms the way
        // the parallel scheduler would, merge them in order, and
        // require exact equality with the single-pass histogram —
        // counts, totals, min/max, and fingerprint.
        const unsigned k = 2 + unsigned(rng.nextBounded(7));
        std::vector<LatencyHistogram> parts(k);
        LatencyHistogram single;
        const size_t n = 1000 + rng.nextBounded(10'000);
        for (size_t i = 0; i < n; ++i) {
            const unsigned bits = 1 + unsigned(rng.nextBounded(40));
            const uint64_t v = rng.next() >> (64 - bits);
            single.record(v);
            parts[rng.nextBounded(k)].record(v);
        }
        LatencyHistogram merged;
        for (const LatencyHistogram &part : parts)
            merged.merge(part);
        ASSERT_TRUE(merged == single);
        ASSERT_EQ(merged.fingerprint(), single.fingerprint());
        ASSERT_EQ(merged.count(), single.count());
        ASSERT_DOUBLE_EQ(merged.mean(), single.mean());
        for (double p : {50.0, 99.0, 99.9})
            ASSERT_EQ(merged.percentile(p), single.percentile(p));
    }
}
