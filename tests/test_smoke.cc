/**
 * @file
 * End-to-end smoke tests: build a tiny guest program with the IR,
 * compile it for both ISAs, run it on both CPU models, and check the
 * architectural results through guest memory.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"

using namespace svb;

namespace
{

/** Build a program that computes fib(n) iteratively into data[0]. */
gen::Program
fibProgram(int64_t n, Addr &result_addr_out)
{
    gen::ProgramBuilder pb;
    result_addr_out = pb.addZeroData(16);

    auto f = pb.beginFunction("main", 0);
    const int a = f.newVreg(), b = f.newVreg(), t = f.newVreg(),
              i = f.newVreg(), ptr = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.movi(a, 0);
    f.movi(b, 1);
    f.movi(i, 0);
    f.label(loop);
    f.brcondi(gen::CondOp::Ge, i, n, done);
    f.bin(gen::BinOp::Add, t, a, b);
    f.mov(a, b);
    f.mov(b, t);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);
    f.lea(ptr, result_addr_out);
    f.store(ptr, 0, a, 8);
    f.ret();

    pb.setEntry("main");
    return pb.take();
}

uint64_t
runFib(IsaId isa, CpuModel model, uint64_t *cycles_out = nullptr)
{
    SystemConfig cfg = SystemConfig::paperConfig(isa);
    cfg.numCores = 1;
    System sys(cfg);

    Addr result_addr = 0;
    gen::Program prog = fibProgram(30, result_addr);
    LoadableImage image = gen::compileProgram(prog, isa);
    LoadedProgram lp = loadProcess(sys.kernel(), image, "fib", 0);

    sys.scheduleIdleCores();
    sys.switchCpu(0, model);
    const uint64_t ran = sys.run(5'000'000);
    EXPECT_LT(ran, 5'000'000u) << "program did not terminate";
    EXPECT_TRUE(sys.cpu(0).halted());
    if (cycles_out != nullptr)
        *cycles_out = ran;

    AddressSpace &as = *sys.kernel().process(lp.pid).space;
    return as.read(result_addr, 8);
}

} // namespace

TEST(Smoke, FibRiscvAtomic)
{
    EXPECT_EQ(runFib(IsaId::Riscv, CpuModel::Atomic), 832040u);
}

TEST(Smoke, FibRiscvO3)
{
    EXPECT_EQ(runFib(IsaId::Riscv, CpuModel::O3), 832040u);
}

TEST(Smoke, FibCx86Atomic)
{
    EXPECT_EQ(runFib(IsaId::Cx86, CpuModel::Atomic), 832040u);
}

TEST(Smoke, FibCx86O3)
{
    EXPECT_EQ(runFib(IsaId::Cx86, CpuModel::O3), 832040u);
}

TEST(Smoke, O3FasterThanAtomicIsNotRequiredButBothTerminate)
{
    uint64_t atomic_cycles = 0, o3_cycles = 0;
    runFib(IsaId::Riscv, CpuModel::Atomic, &atomic_cycles);
    runFib(IsaId::Riscv, CpuModel::O3, &o3_cycles);
    EXPECT_GT(atomic_cycles, 0u);
    EXPECT_GT(o3_cycles, 0u);
}

TEST(Smoke, GuestLibMemCopyAndHash)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);

    gen::ProgramBuilder pb;
    const char payload[] = "hello serverless world, hello riscv!";
    const Addr src = pb.addData(payload, sizeof(payload));
    const Addr dst = pb.addZeroData(64);
    const Addr hash_out = pb.addZeroData(8);
    gen::GuestLib lib = gen::GuestLib::addTo(pb);

    auto f = pb.beginFunction("main", 0);
    const int vsrc = f.newVreg(), vdst = f.newVreg(), vlen = f.newVreg(),
              vout = f.newVreg();
    f.lea(vsrc, src);
    f.lea(vdst, dst);
    f.movi(vlen, sizeof(payload));
    f.callVoid(lib.memCopy, {vdst, vsrc, vlen});
    const int h = f.call(lib.fnvHash, {vdst, vlen});
    f.lea(vout, hash_out);
    f.store(vout, 0, h, 8);
    f.ret();
    pb.setEntry("main");

    LoadableImage image =
        gen::compileProgram(pb.take(), IsaId::Riscv);
    LoadedProgram lp = loadProcess(sys.kernel(), image, "copy", 0);
    sys.scheduleIdleCores();
    ASSERT_LT(sys.run(2'000'000), 2'000'000u);

    AddressSpace &as = *sys.kernel().process(lp.pid).space;
    char copied[sizeof(payload)];
    as.readBytes(dst, copied, sizeof(payload));
    EXPECT_STREQ(copied, payload);

    // Host-side FNV-1a for cross-checking.
    uint64_t expect = 0xcbf29ce484222325ULL;
    for (char c : payload) {
        expect ^= uint8_t(c);
        expect *= 0x100000001b3ULL;
    }
    EXPECT_EQ(as.read(hash_out, 8), expect);
}
