/**
 * @file
 * Unit tests for the simulation kernel: event queue, RNG, statistics,
 * checkpoints.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "sim/eventq.hh"
#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"

using namespace svb;

TEST(EventQueue, FiresInTimeThenInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(20, "b", [&] { order.push_back(2); });
    q.schedule(10, "a", [&] { order.push_back(1); });
    q.schedule(20, "c", [&] { order.push_back(3); });
    EXPECT_EQ(q.nextEventTick(), 10u);
    EXPECT_EQ(q.serviceUpTo(15), 1u);
    EXPECT_EQ(q.serviceUpTo(25), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, "outer", [&] {
        ++fired;
        q.schedule(6, "inner", [&] { ++fired; });
    });
    q.serviceUpTo(10);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue q;
    q.schedule(5, "x", [] {});
    q.clear();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.nextEventTick(), maxTick);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsIndependentOfDrawOrder)
{
    // split() must be a pure function of (seed, streamId): deriving a
    // substream after draining values from the parent gives the same
    // stream as deriving it first. This is what makes per-stream
    // sequences identical regardless of SVBENCH_JOBS scheduling.
    Rng fresh(42);
    Rng drained(42);
    for (int i = 0; i < 1000; ++i)
        drained.next();
    Rng a = fresh.split(7);
    Rng b = drained.split(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsAreDistinct)
{
    Rng master(42);
    Rng s0 = master.split(0);
    Rng s1 = master.split(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += s0.next() == s1.next();
    EXPECT_LT(same, 3);
    // And distinct from the parent stream itself.
    Rng parent(42);
    Rng child = parent.split(0);
    same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.nextBounded(17), 17u);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = r.nextRange(-5, 9);
        ASSERT_GE(v, -5);
        ASSERT_LE(v, 9);
    }
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Stats, ScalarAndFormula)
{
    StatGroup g("top");
    Scalar &s = g.addScalar("count", "a counter");
    g.addFormula("double", "2x count",
                 [&s] { return 2.0 * double(s.value()); });
    ++s;
    s += 4;
    auto snap = g.snapshotAll();
    EXPECT_DOUBLE_EQ(snap.at("top.count"), 5.0);
    EXPECT_DOUBLE_EQ(snap.at("top.double"), 10.0);
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, ChildGroupsAndDottedNames)
{
    StatGroup g("sys");
    Scalar &inner = g.childGroup("cpu").childGroup("l1").addScalar(
        "misses", "d");
    inner += 3;
    auto snap = g.snapshotAll();
    EXPECT_DOUBLE_EQ(snap.at("sys.cpu.l1.misses"), 3.0);
    // childGroup returns the same child on repeat lookups.
    EXPECT_EQ(&g.childGroup("cpu"), &g.childGroup("cpu"));
}

TEST(Stats, DistributionBucketsAndMean)
{
    StatGroup g("g");
    Distribution &d = g.addDistribution("lat", "latency", 0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(250); // overflow
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 15 + 15 + 250) / 4.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
}

TEST(Stats, PrintProducesOutput)
{
    StatGroup g("root");
    g.addScalar("x", "something") += 9;
    std::ostringstream os;
    g.printAll(os);
    EXPECT_NE(os.str().find("root.x"), std::string::npos);
    EXPECT_NE(os.str().find("9"), std::string::npos);
}

TEST(Checkpoint, ScalarStringBlobRoundtrip)
{
    Checkpoint cp;
    cp.setScalar("a.b", 123);
    cp.setString("name", "svbench");
    cp.setBlob("mem", {1, 2, 3, 255});
    EXPECT_EQ(cp.getScalar("a.b"), 123u);
    EXPECT_EQ(cp.getString("name"), "svbench");
    EXPECT_EQ(cp.getBlob("mem").size(), 4u);
    EXPECT_TRUE(cp.hasScalar("a.b"));
    EXPECT_FALSE(cp.hasScalar("missing"));
}

TEST(Checkpoint, FileRoundtrip)
{
    const std::string path = "/tmp/svbench_test_ckpt.bin";
    {
        Checkpoint cp;
        cp.setScalar("cycle", 999);
        cp.setString("isa", "riscv64");
        std::vector<uint8_t> blob(4096);
        for (size_t i = 0; i < blob.size(); ++i)
            blob[i] = uint8_t(i * 7);
        cp.setBlob("mem.contents", std::move(blob));
        cp.saveToFile(path);
    }
    Checkpoint cp = Checkpoint::loadFromFile(path);
    EXPECT_EQ(cp.getScalar("cycle"), 999u);
    EXPECT_EQ(cp.getString("isa"), "riscv64");
    const auto &blob = cp.getBlob("mem.contents");
    ASSERT_EQ(blob.size(), 4096u);
    EXPECT_EQ(blob[1000], uint8_t(1000 * 7));
    std::remove(path.c_str());
}
