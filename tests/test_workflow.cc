/**
 * @file
 * The workflow/DAG engine's contracts:
 *  - DAG validation rejects malformed specs with named fatal errors
 *    (empty DAG, duplicate names, unknown stages/functions, self and
 *    duplicate edges, cycles) instead of misbehaving inside the
 *    engine; topoOrder is deterministic;
 *  - the transfer model's local/remote arithmetic, and the payload-
 *    affinity placement's effect on local-vs-remote hop counts;
 *  - a single-stage workflow reproduces the plain load engine's
 *    numbers exactly (the byte-identity acceptance criterion);
 *  - per-stage critical-path attribution telescopes exactly to the
 *    end-to-end latency, and chain/fan-out shapes attribute where
 *    they must;
 *  - fault/retry propagation per stage task conserves workflow
 *    instances;
 *  - workflow sweeps are byte-identical (result fields and CSV rows)
 *    at any SVBENCH_JOBS value, and wflow rows survive the cache
 *    round-trip;
 *  - LatencyHistogram::percentile() on an empty histogram returns 0
 *    deterministically (regression guard for the zero-count path).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "core/checkpoint_store.hh"
#include "load/load_runner.hh"
#include "load/workflow.hh"
#include "workloads/workloads.hh"

using namespace svb;
using namespace svb::load;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

struct TempCacheFile
{
    explicit TempCacheFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~TempCacheFile() { std::remove(path.c_str()); }
    std::string path;
};

struct TempCheckpointDir
{
    explicit TempCheckpointDir(std::string d) : dir(std::move(d))
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    ~TempCheckpointDir()
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    std::string dir;
};

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

ClusterConfig
standaloneConfig(IsaId isa)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = false;
    cfg.startMemcached = false;
    return cfg;
}

/** One-function scenario skeleton shared by the engine tests (cheap
 *  to calibrate: every stage runs fibonacci-go). */
WorkflowScenario
workflowScenario(const std::string &name, WorkflowSpec dag,
                 unsigned nodes = 1,
                 RoutingPolicy policy = RoutingPolicy::LeastLoaded)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    WorkflowScenario s;
    s.name = name;
    s.cluster = standaloneConfig(IsaId::Riscv);
    s.functions = {{spec, &workloads::workloadImpl(spec.workload), 1.0}};
    s.dag = std::move(dag);
    s.arrival.kind = ArrivalKind::Poisson;
    s.arrival.ratePerSec = 1000.0;
    s.pool.policy = KeepAlivePolicy::FixedTtl;
    s.pool.maxInstances = 2;
    s.pool.keepAliveNs = 20'000'000;
    s.fleet.nodes = nodes;
    s.fleet.routing = policy;
    s.invocations = 100;
    s.seed = 91;
    return s;
}

/** A structurally valid 2-stage spec to perturb in the negatives. */
WorkflowSpec
validSpec()
{
    WorkflowSpec spec;
    spec.name = "neg";
    spec.stages = {{"a", 0, 1, 0, StagePlacement::Inherit},
                   {"b", 0, 1, 0, StagePlacement::Inherit}};
    spec.edges = {{0, 1}};
    return spec;
}

} // namespace

// --------------------------------------------------------------------------
// DAG validation: named fatal errors for every malformed shape
// --------------------------------------------------------------------------

TEST(DagValidation, EmptyDagIsRejected)
{
    WorkflowSpec spec;
    spec.name = "empty";
    EXPECT_DEATH(spec.validate(1), "empty DAG");
}

TEST(DagValidation, EmptyStageNameIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.stages[1].name = "";
    EXPECT_DEATH(spec.validate(1), "empty name");
}

TEST(DagValidation, MetacharacterStageNameIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.stages[1].name = "b=1";
    EXPECT_DEATH(spec.validate(1), "cache metacharacter");
}

TEST(DagValidation, DuplicateStageNameIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.stages[1].name = "a";
    EXPECT_DEATH(spec.validate(1), "duplicate stage name");
}

TEST(DagValidation, ZeroParallelismIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.stages[0].parallelism = 0;
    EXPECT_DEATH(spec.validate(1), "zero parallelism");
}

TEST(DagValidation, UnknownFunctionIndexIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.stages[1].fn = 7;
    EXPECT_DEATH(spec.validate(1), "unknown function index");
}

TEST(DagValidation, EdgeToUnknownStageIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.edges.push_back({1, 5});
    EXPECT_DEATH(spec.validate(1), "unknown stage");
}

TEST(DagValidation, SelfEdgeIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.edges.push_back({1, 1});
    EXPECT_DEATH(spec.validate(1), "self-edge");
}

TEST(DagValidation, DuplicateEdgeIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.edges.push_back({0, 1});
    EXPECT_DEATH(spec.validate(1), "duplicate edge");
}

TEST(DagValidation, CycleIsRejected)
{
    WorkflowSpec spec = validSpec();
    spec.edges.push_back({1, 0});
    EXPECT_DEATH(spec.validate(1), "cycle");
}

TEST(DagValidation, ValidSpecsPass)
{
    validSpec().validate(1);
    chainSpec("c", 4, {0}, 1024).validate(1);
    fanOutSpec("f", 8, {0}, 1024).validate(1);
    mapReduceSpec("m", 4, 2, {0}, 1024).validate(1);
}

// --------------------------------------------------------------------------
// Shapes and topological order
// --------------------------------------------------------------------------

TEST(DagShapes, BuildersProduceTheDocumentedShapes)
{
    const WorkflowSpec chain = chainSpec("c", 4, {0}, 64);
    EXPECT_EQ(chain.stages.size(), 4u);
    EXPECT_EQ(chain.edges.size(), 3u);
    EXPECT_EQ(chain.totalTasks(), 4u);

    const WorkflowSpec fan = fanOutSpec("f", 8, {0}, 64);
    EXPECT_EQ(fan.stages.size(), 3u);
    EXPECT_EQ(fan.totalTasks(), 10u); // split + 8 workers + join
    EXPECT_EQ(fan.stages[1].parallelism, 8u);

    const WorkflowSpec mr = mapReduceSpec("m", 4, 2, {0}, 64);
    EXPECT_EQ(mr.stages.size(), 4u);
    EXPECT_EQ(mr.totalTasks(), 8u); // ingest + 4 map + 2 reduce + merge
}

TEST(DagShapes, TopoOrderIsDeterministicAndRespectsEdges)
{
    // A diamond with the edge list deliberately shuffled: the order
    // must be a pure function of the spec, smallest ready index first.
    WorkflowSpec spec;
    spec.name = "diamond";
    spec.stages = {{"s", 0, 1, 0, StagePlacement::Inherit},
                   {"l", 0, 1, 0, StagePlacement::Inherit},
                   {"r", 0, 1, 0, StagePlacement::Inherit},
                   {"j", 0, 1, 0, StagePlacement::Inherit}};
    spec.edges = {{2, 3}, {0, 2}, {1, 3}, {0, 1}};
    const std::vector<unsigned> order = topoOrder(spec);
    EXPECT_EQ(order, (std::vector<unsigned>{0, 1, 2, 3}));
}

// --------------------------------------------------------------------------
// Transfer model
// --------------------------------------------------------------------------

TEST(TransferModel, ZeroBytesCostNothing)
{
    TransferModel tm;
    EXPECT_EQ(tm.costNs(0, true), 0u);
    EXPECT_EQ(tm.costNs(0, false), 0u);
}

TEST(TransferModel, LocalAndRemoteArithmetic)
{
    TransferModel tm;
    tm.localBaseNs = 100;
    tm.localNsPerKib = 10;
    tm.remoteBaseNs = 5'000;
    tm.remoteNsPerKib = 320;
    EXPECT_EQ(tm.costNs(2048, true), 100u + 20u);
    EXPECT_EQ(tm.costNs(2048, false), 5'000u + 640u);
    // A cross-node hop always costs more than the same-size hand-off.
    EXPECT_GT(tm.costNs(4096, false), tm.costNs(4096, true));
}

// --------------------------------------------------------------------------
// Empty-histogram percentile regression (zero-count guard)
// --------------------------------------------------------------------------

TEST(Histogram, EmptyHistogramPercentileIsZeroDeterministically)
{
    const LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    // Every percentile of a zero-count histogram is 0 — never a read
    // of an empty bucket array, never UB, at every probe point.
    for (const double p : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0})
        EXPECT_EQ(h.percentile(p), 0u) << p;
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
}

// --------------------------------------------------------------------------
// Single-stage identity with the plain load engine
// --------------------------------------------------------------------------

TEST(WorkflowEngine, SingleStageWorkflowMatchesTheLoadEngine)
{
    TempCheckpointDir ckpts("ckpt_wf_ident");
    TempCacheFile file("test_wf_ident.csv");

    WorkflowScenario ws =
        workflowScenario("t-wf-ident", chainSpec("c1", 1, {0}, 0));
    ws.invocations = 400;

    LoadScenario ls;
    ls.name = "t-wf-ident-load";
    ls.cluster = ws.cluster;
    ls.mix = ws.functions;
    ls.arrival = ws.arrival;
    ls.pool = ws.pool;
    ls.fleet = ws.fleet;
    ls.invocations = ws.invocations;
    ls.seed = ws.seed;

    ResultCache cache(file.path);
    const WorkflowResult wr = WorkflowRunner(cache).run(ws);
    const LoadResult lr = LoadRunner(cache).run(ls);
    ASSERT_TRUE(wr.ok);
    ASSERT_TRUE(lr.ok);

    // Identical draw sequences and pool operations: the distributions
    // and every shared counter agree bit-for-bit.
    EXPECT_TRUE(wr.latency == lr.latency);
    EXPECT_EQ(wr.histoFingerprint, lr.histoFingerprint);
    EXPECT_EQ(wr.goodFingerprint, lr.goodFingerprint);
    EXPECT_EQ(wr.p50Ns, lr.p50Ns);
    EXPECT_EQ(wr.p99Ns, lr.p99Ns);
    EXPECT_EQ(wr.maxNs, lr.maxNs);
    EXPECT_EQ(wr.coldStarts, lr.coldStarts);
    EXPECT_EQ(wr.warmHits, lr.warmHits);
    EXPECT_EQ(wr.evictions, lr.evictions);
    EXPECT_EQ(wr.succeeded, lr.succeeded);
    EXPECT_EQ(wr.throughputRps, lr.throughputRps);
    EXPECT_EQ(wr.fleetUtilisation, lr.fleetUtilisation);
    // And no transfer was charged: a single stage moves no payload.
    EXPECT_EQ(wr.transferNs, 0u);
    EXPECT_EQ(wr.transfersLocal + wr.transfersRemote, 0u);
}

// --------------------------------------------------------------------------
// Critical-path attribution
// --------------------------------------------------------------------------

TEST(WorkflowEngine, CriticalPathTelescopesToEndToEndLatency)
{
    TempCheckpointDir ckpts("ckpt_wf_crit");
    TempCacheFile file("test_wf_crit.csv");

    // One instance, fault-free: the per-stage critical totals must sum
    // to EXACTLY the end-to-end latency (maxValue() is exact, unlike
    // the bucket-quantised percentiles).
    WorkflowScenario s =
        workflowScenario("t-wf-tele", fanOutSpec("f", 8, {0}, 4096), 3);
    s.invocations = 1;

    ResultCache cache(file.path);
    const WorkflowResult res = WorkflowRunner(cache).run(s);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.succeeded, 1u);
    ASSERT_EQ(res.critNsByStage.size(), 3u);
    const uint64_t critTotal =
        std::accumulate(res.critNsByStage.begin(),
                        res.critNsByStage.end(), uint64_t(0));
    EXPECT_EQ(critTotal, res.latency.maxValue());
    // Every stage of a fan-out sits on the critical path once.
    for (size_t st = 0; st < res.critNsByStage.size(); ++st)
        EXPECT_GT(res.critNsByStage[st], 0u) << "stage " << st;
}

TEST(WorkflowEngine, ChainAttributesEveryStage)
{
    TempCheckpointDir ckpts("ckpt_wf_chain");
    TempCacheFile file("test_wf_chain.csv");

    WorkflowScenario s =
        workflowScenario("t-wf-chain", chainSpec("c4", 4, {0}, 1024));

    ResultCache cache(file.path);
    const WorkflowResult res = WorkflowRunner(cache).run(s);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.succeeded, res.invocations);
    EXPECT_EQ(res.latency.count(), res.invocations);
    ASSERT_EQ(res.critPermil.size(), 4u);
    // Integer floor division: shares sum to at most 1000 and land
    // within rounding of it; every chain stage takes a nonzero share.
    const uint64_t permilSum =
        std::accumulate(res.critPermil.begin(), res.critPermil.end(),
                        uint64_t(0));
    EXPECT_LE(permilSum, 1000u);
    EXPECT_GE(permilSum, 1000u - 4u);
    for (size_t st = 0; st < res.critPermil.size(); ++st)
        EXPECT_GT(res.critPermil[st], 0u) << "stage " << st;
    // A single-node chain hands every payload off locally.
    EXPECT_EQ(res.transfersRemote, 0u);
    EXPECT_EQ(res.transfersLocal, 3u * res.invocations);
}

// --------------------------------------------------------------------------
// Placement: payload affinity versus inherited routing
// --------------------------------------------------------------------------

TEST(WorkflowEngine, PayloadAffinityConvertsRemoteHopsToLocal)
{
    TempCheckpointDir ckpts("ckpt_wf_aff");
    TempCacheFile file("test_wf_aff.csv");

    WorkflowSpec inherit = fanOutSpec("fan", 8, {0}, 64 * 1024);
    WorkflowSpec affine = inherit;
    for (StageSpec &st : affine.stages)
        st.placement = StagePlacement::PayloadAffinity;

    WorkflowScenario si =
        workflowScenario("t-wf-inherit", std::move(inherit), 3);
    WorkflowScenario sa =
        workflowScenario("t-wf-affine", std::move(affine), 3);

    ResultCache cache(file.path);
    const WorkflowResult ri = WorkflowRunner(cache).run(si);
    const WorkflowResult ra = WorkflowRunner(cache).run(sa);
    ASSERT_TRUE(ri.ok);
    ASSERT_TRUE(ra.ok);

    // Least-loaded routing spreads the 8 workers across the 3 nodes,
    // so the join pulls most payloads cross-node; affinity co-locates
    // consumers with their producers and converts those hops.
    EXPECT_GT(ri.transfersRemote, 0u);
    EXPECT_LT(ra.transfersRemote, ri.transfersRemote);
    EXPECT_GT(ra.transfersLocal, ri.transfersLocal);
    EXPECT_LT(ra.transferNs, ri.transferNs);
}

// --------------------------------------------------------------------------
// Fault propagation per stage task
// --------------------------------------------------------------------------

TEST(WorkflowEngine, FaultsRetriesAndConservation)
{
    TempCheckpointDir ckpts("ckpt_wf_fault");
    TempCacheFile file("test_wf_fault.csv");

    WorkflowScenario s =
        workflowScenario("t-wf-fault", mapReduceSpec("mr", 4, 2, {0}, 512));
    s.invocations = 150;
    s.fault.coldStartFailProb = 0.2;
    s.fault.crashProb = 0.05;
    s.retry.maxAttempts = 3;
    s.retry.backoffBaseNs = 100'000;
    s.retry.backoffCapNs = 1'000'000;

    ResultCache cache(file.path);
    const WorkflowResult res = WorkflowRunner(cache).run(s);
    ASSERT_TRUE(res.ok);

    // Conservation: every workflow instance ends exactly one way and
    // lands exactly once in the latency histogram.
    EXPECT_EQ(res.succeeded + res.failedWorkflows + res.sheds,
              res.invocations);
    EXPECT_EQ(res.latency.count(), res.invocations);
    // The fault machinery actually engaged, and failed tasks retried
    // without re-running their completed predecessors (retries are
    // per-task, so they exist independently of workflow failures).
    EXPECT_GT(res.retries, 0u);
    EXPECT_GT(res.succeeded, 0u);
}

TEST(WorkflowEngine, NodeCrashConservesWorkflows)
{
    TempCheckpointDir ckpts("ckpt_wf_crash");
    TempCacheFile file("test_wf_crash.csv");

    WorkflowScenario s =
        workflowScenario("t-wf-ncrash", fanOutSpec("fan", 6, {0}, 1024),
                         3);
    s.invocations = 150;
    s.arrival.ratePerSec = 5000.0;
    s.retry.maxAttempts = 3;
    s.retry.backoffBaseNs = 100'000;
    s.retry.backoffCapNs = 1'000'000;
    s.fleet.nodeFaults.push_back(
        {NodeFaultEvent::Kind::Crash, 0, 5'000'000, 5'000'000});
    s.fleet.nodeFaults.push_back(
        {NodeFaultEvent::Kind::Partition, 1, 10'000'000, 2'000'000});

    ResultCache cache(file.path);
    const WorkflowResult res = WorkflowRunner(cache).run(s);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.succeeded + res.failedWorkflows + res.sheds,
              res.invocations);
    EXPECT_EQ(res.latency.count(), res.invocations);
    EXPECT_EQ(res.nodeFaults, 2u);
}

// --------------------------------------------------------------------------
// Determinism across worker counts, and the cache round-trip
// --------------------------------------------------------------------------

TEST(WorkflowSweep, ByteIdenticalAcrossWorkerCounts)
{
    TempCheckpointDir ckpts("ckpt_wf_sweep");

    std::vector<WorkflowScenario> scenarios;
    scenarios.push_back(
        workflowScenario("t-wfs-chain", chainSpec("c4", 4, {0}, 2048)));
    scenarios.push_back(workflowScenario(
        "t-wfs-fan", fanOutSpec("fan", 8, {0}, 2048), 3));
    {
        WorkflowSpec mr = mapReduceSpec("mr", 4, 2, {0}, 2048);
        for (StageSpec &st : mr.stages)
            st.placement = StagePlacement::PayloadAffinity;
        scenarios.push_back(workflowScenario(
            "t-wfs-mr-aff", std::move(mr), 3, RoutingPolicy::PowerOfTwo));
    }

    TempCacheFile serial_file("test_wf_serial.csv");
    std::vector<WorkflowResult> serial;
    {
        ResultCache cache(serial_file.path);
        serial = workflowSweep(cache, scenarios, 1);
    }
    TempCacheFile par_file("test_wf_jobs8.csv");
    std::vector<WorkflowResult> wide;
    {
        ResultCache cache(par_file.path);
        wide = workflowSweep(cache, scenarios, 8);
    }

    ASSERT_EQ(serial.size(), wide.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << scenarios[i].name;
        EXPECT_TRUE(serial[i].latency == wide[i].latency)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].histoFingerprint, wide[i].histoFingerprint)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].critFingerprint, wide[i].critFingerprint)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].critPermil, wide[i].critPermil)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].transferNs, wide[i].transferNs);
        EXPECT_EQ(serial[i].transfersRemote, wide[i].transfersRemote);
    }

    // The CSV backing file too (ldcal + wflow v1 rows).
    const std::string serial_csv = slurp(serial_file.path);
    EXPECT_FALSE(serial_csv.empty());
    EXPECT_EQ(serial_csv, slurp(par_file.path));
}

TEST(WorkflowSweep, RowsSurviveTheCacheRoundTrip)
{
    TempCheckpointDir ckpts("ckpt_wf_cache");
    TempCacheFile file("test_wf_cache.csv");

    std::vector<WorkflowScenario> scenarios = {workflowScenario(
        "t-wfs-cache", fanOutSpec("fan", 4, {0}, 1024), 2)};

    std::vector<WorkflowResult> fresh;
    {
        ResultCache cache(file.path);
        fresh = workflowSweep(cache, scenarios, 1);
    }
    std::vector<WorkflowResult> cached;
    {
        ResultCache cache(file.path); // re-reads the CSV
        cached = workflowSweep(cache, scenarios, 1);
    }
    ASSERT_TRUE(fresh[0].ok);
    ASSERT_TRUE(cached[0].ok);
    // A cached row reproduces every summary field the bench prints,
    // the attribution shares included (the crit slots).
    EXPECT_EQ(cached[0].p50Ns, fresh[0].p50Ns);
    EXPECT_EQ(cached[0].p99Ns, fresh[0].p99Ns);
    EXPECT_EQ(cached[0].histoFingerprint, fresh[0].histoFingerprint);
    EXPECT_EQ(cached[0].critFingerprint, fresh[0].critFingerprint);
    EXPECT_EQ(cached[0].critPermil, fresh[0].critPermil);
    EXPECT_EQ(cached[0].transfersRemote, fresh[0].transfersRemote);
    EXPECT_EQ(cached[0].bytesRemote, fresh[0].bytesRemote);
    EXPECT_EQ(cached[0].stages, fresh[0].stages);
    EXPECT_EQ(cached[0].tasksPerWorkflow, fresh[0].tasksPerWorkflow);
    // Distributions are fresh-run-only, as for load rows.
    EXPECT_EQ(cached[0].latency.count(), 0u);
    EXPECT_GT(fresh[0].latency.count(), 0u);
}
