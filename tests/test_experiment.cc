/**
 * @file
 * Integration tests of the full experiment pipeline: cluster boot,
 * checkpoint restore, container deployment, cold/warm measurement.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workloads/workloads.hh"

using namespace svb;

namespace
{

ClusterConfig
smallConfig(IsaId isa, bool with_stores)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = with_stores;
    cfg.startMemcached = with_stores;
    return cfg;
}

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

} // namespace

TEST(Experiment, FibonacciGoRiscvColdWarm)
{
    ExperimentRunner runner(smallConfig(IsaId::Riscv, false));
    const FunctionSpec spec = specFor("fibonacci-go");
    FunctionResult res =
        runner.runFunction(spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(res.ok);
    EXPECT_GT(res.cold.cycles, 0u);
    EXPECT_GT(res.warm.cycles, 0u);
    EXPECT_GT(res.cold.insts, 0u);
    // Cold runs the lazy init and misses everywhere: strictly slower.
    EXPECT_GT(res.cold.cycles, res.warm.cycles);
    EXPECT_GT(res.cold.l1iMisses, res.warm.l1iMisses);
}

TEST(Experiment, FibonacciGoCx86ColdWarm)
{
    ExperimentRunner runner(smallConfig(IsaId::Cx86, false));
    const FunctionSpec spec = specFor("fibonacci-go");
    FunctionResult res =
        runner.runFunction(spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(res.ok);
    EXPECT_GT(res.cold.cycles, res.warm.cycles);
}

TEST(Experiment, PythonInterpreterRuns)
{
    ExperimentRunner runner(smallConfig(IsaId::Riscv, false));
    const FunctionSpec spec = specFor("fibonacci-python");
    FunctionResult res =
        runner.runFunction(spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(res.ok);
    EXPECT_GT(res.cold.cycles, res.warm.cycles);
}

TEST(Experiment, HotelGeoTalksToCassandra)
{
    ExperimentRunner runner(smallConfig(IsaId::Riscv, true));
    const FunctionSpec spec = specFor("geo");
    FunctionResult res =
        runner.runFunction(spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(res.ok);
    EXPECT_GT(res.cold.cycles, res.warm.cycles);
}

TEST(Experiment, EmulationModeReportsLatencies)
{
    ExperimentRunner runner(smallConfig(IsaId::Riscv, false));
    const FunctionSpec spec = specFor("aes-go");
    EmuResult res = runner.runFunctionEmu(
        spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(res.ok);
    EXPECT_GT(res.coldNs, res.warmNs);
}
