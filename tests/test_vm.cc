/**
 * @file
 * Guest bytecode VM tests: run small bytecode programs through the
 * interpreter (itself simulated guest code) and check outputs.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.hh"
#include "gen/guestlib.hh"
#include "guest/loader.hh"
#include "stack/vm.hh"

using namespace svb;

namespace
{

/**
 * Run @p bytecode under the interpreter with @p request as input.
 * @return the response bytes
 */
std::vector<uint8_t>
runBytecode(const std::vector<uint8_t> &bytecode,
            const std::vector<uint8_t> &request, IsaId isa = IsaId::Riscv)
{
    gen::ProgramBuilder pb;
    const Addr req_addr =
        pb.addData(request.data(), std::max<size_t>(request.size(), 8));
    const Addr resp_addr = pb.addZeroData(256);
    const Addr resp_len_addr = pb.addZeroData(8);
    const Addr code_addr = pb.addData(bytecode.data(), bytecode.size());
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);
    const int vm_run = vm::emitVmInterpreter(pb, lib);

    auto f = pb.beginFunction("main", 0);
    const int ctx = f.newVreg(), v = f.newVreg(), out = f.newVreg();
    // ctx block lives at the start of the heap.
    f.movi(ctx, int64_t(layout::heapBase));
    f.lea(v, req_addr);
    f.store(ctx, vm::ctxoff::reqBuf, v, 8);
    f.movi(v, int64_t(request.size()));
    f.store(ctx, vm::ctxoff::reqLen, v, 8);
    f.lea(v, resp_addr);
    f.store(ctx, vm::ctxoff::respBuf, v, 8);
    f.movi(v, int64_t(layout::heapBase) + 4096); // VM arena
    f.store(ctx, vm::ctxoff::heap, v, 8);
    const int codep = f.newVreg(), ninsts = f.newVreg();
    f.lea(codep, code_addr);
    f.movi(ninsts, int64_t(bytecode.size() / vm::instBytes));
    const int vrlen = f.call(vm_run, {codep, ninsts, ctx});
    f.lea(out, resp_len_addr);
    f.store(out, 0, vrlen, 8);
    f.ret();
    pb.setEntry("main");

    SystemConfig cfg = SystemConfig::paperConfig(isa);
    cfg.numCores = 1;
    System sys(cfg);
    LoadableImage image = gen::compileProgram(pb.take(), isa);
    LoadedProgram lp = loadProcess(sys.kernel(), image, "vm", 0);
    sys.scheduleIdleCores();
    EXPECT_LT(sys.run(50'000'000), 50'000'000u) << "vm hung";

    const AddressSpace &as = *sys.kernel().process(lp.pid).space;
    const uint64_t rlen = as.read(resp_len_addr, 8);
    std::vector<uint8_t> resp(rlen);
    if (rlen > 0)
        as.readBytes(resp_addr, resp.data(), rlen);
    return resp;
}

std::vector<uint8_t>
u64Request(uint64_t a, uint64_t b = 0)
{
    std::vector<uint8_t> req(16);
    std::memcpy(req.data(), &a, 8);
    std::memcpy(req.data() + 8, &b, 8);
    return req;
}

uint64_t
u64At(const std::vector<uint8_t> &bytes, size_t off)
{
    uint64_t v = 0;
    std::memcpy(&v, bytes.data() + off, 8);
    return v;
}

} // namespace

TEST(Vm, ArithmeticAndHalt)
{
    vm::VmAsm a;
    a.ldi(1, 21);
    a.ldi(2, 2);
    a.mul(3, 1, 2);
    a.addi(3, 3, 100);
    a.ldi(4, 0);
    a.emit(vm::vmOut8, 4, 3);
    a.ldi(5, 8);
    a.halt(5);
    const auto resp = runBytecode(a.finish(), u64Request(0));
    ASSERT_EQ(resp.size(), 8u);
    EXPECT_EQ(u64At(resp, 0), 142u);
}

TEST(Vm, LoopsAndBranches)
{
    // Sum 1..100 with a jlt loop.
    vm::VmAsm a;
    const uint8_t i = 1, sum = 2, limit = 3, off = 4, len = 5;
    const int loop = a.newLabel();
    a.ldi(i, 1);
    a.ldi(sum, 0);
    a.ldi(limit, 101);
    a.bind(loop);
    a.add(sum, sum, i);
    a.addi(i, i, 1);
    a.jlt(i, limit, loop);
    a.ldi(off, 0);
    a.emit(vm::vmOut8, off, sum);
    a.ldi(len, 8);
    a.halt(len);
    const auto resp = runBytecode(a.finish(), u64Request(0));
    EXPECT_EQ(u64At(resp, 0), 5050u);
}

TEST(Vm, HeapPersistsWithinRun)
{
    vm::VmAsm a;
    const uint8_t v = 1, z = 2, r = 3, off = 4, len = 5;
    a.ldi(v, 777);
    a.ldi(z, 0);
    a.emit(vm::vmSt8, v, z, 0, 128); // heap[128] = 777
    a.emit(vm::vmLd8, r, z, 0, 128);
    a.ldi(off, 0);
    a.emit(vm::vmOut8, off, r);
    a.ldi(len, 8);
    a.halt(len);
    const auto resp = runBytecode(a.finish(), u64Request(0));
    EXPECT_EQ(u64At(resp, 0), 777u);
}

TEST(Vm, ReadsRequestBytesAndWords)
{
    vm::VmAsm a;
    const uint8_t idx = 1, b = 2, w = 3, off = 4, len = 5;
    a.ldi(idx, 1);
    a.emit(vm::vmInB, b, idx); // second byte of the request
    a.ldi(idx, 8);
    a.emit(vm::vmIn8, w, idx); // second word
    a.ldi(off, 0);
    a.emit(vm::vmOut8, off, b);
    a.ldi(off, 8);
    a.emit(vm::vmOut8, off, w);
    a.emit(vm::vmInLen, b);
    a.ldi(off, 16);
    a.emit(vm::vmOut8, off, b);
    a.ldi(len, 24);
    a.halt(len);
    const auto resp = runBytecode(a.finish(), u64Request(0xAB00, 4242));
    EXPECT_EQ(u64At(resp, 0), 0xABu);
    EXPECT_EQ(u64At(resp, 8), 4242u);
    EXPECT_EQ(u64At(resp, 16), 16u);
}

TEST(Vm, HashStepMatchesHost)
{
    vm::VmAsm a;
    const uint8_t h = 1, x = 2, off = 3, len = 4;
    a.ldi(h, 0x811c9dc5);
    a.ldi(x, 0x42);
    a.emit(vm::vmHashStep, h, x);
    a.ldi(off, 0);
    a.emit(vm::vmOut8, off, h);
    a.ldi(len, 8);
    a.halt(len);
    const auto resp = runBytecode(a.finish(), u64Request(0));
    // vmLdi sign-extends its imm32 (0x811c9dc5 has the sign bit set).
    const uint64_t seed = uint64_t(int64_t(int32_t(0x811c9dc5)));
    EXPECT_EQ(u64At(resp, 0), (seed ^ 0x42ULL) * 0x01000193ULL);
}

TEST(Vm, RunawayProgramTerminates)
{
    // No halt: the interpreter's bounds guard returns length 0.
    vm::VmAsm a;
    a.ldi(1, 5);
    a.addi(1, 1, 1);
    const auto resp = runBytecode(a.finish(), u64Request(0));
    EXPECT_EQ(resp.size(), 0u);
}

TEST(Vm, SameResultOnBothIsas)
{
    vm::VmAsm a;
    const uint8_t i = 1, acc = 2, limit = 3, off = 4, len = 5;
    const int loop = a.newLabel();
    a.ldi(i, 0);
    a.ldi(acc, 7);
    a.ldi(limit, 50);
    a.bind(loop);
    a.emit(vm::vmHashStep, acc, i);
    a.addi(i, i, 1);
    a.jlt(i, limit, loop);
    a.ldi(off, 0);
    a.emit(vm::vmOut8, off, acc);
    a.ldi(len, 8);
    a.halt(len);
    const auto bytecode = a.finish();
    const auto rv = runBytecode(bytecode, u64Request(0), IsaId::Riscv);
    const auto cx = runBytecode(bytecode, u64Request(0), IsaId::Cx86);
    EXPECT_EQ(rv, cx);
}
