/**
 * @file
 * Workload-correctness tests: the compiled and bytecode forms of each
 * dual-implementation function must produce identical responses, and
 * responses must match host-side reference computations.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.hh"
#include "workloads/workloads.hh"

using namespace svb;

namespace
{

/**
 * Deploy a function and drive one request through the full stack;
 * return the response payload observed by the client.
 *
 * The client overwrites its buffer with the reply, so we read the
 * reply from the client-response ring's consumed slot instead: we
 * capture it by hooking the ring memory after the work completes.
 */
std::vector<uint8_t>
responseOf(const FunctionSpec &spec, IsaId isa)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = spec.usesDb;
    cfg.startMemcached = spec.usesMemcached;

    ServerlessCluster cluster(cfg);
    cluster.boot();
    cluster.resetToBaseline();
    auto dep =
        cluster.deploy(spec, workloads::workloadImpl(spec.workload));
    EXPECT_TRUE(cluster.runUntilReady(1));
    cluster.system().run(5'000);
    cluster.openClientGate(dep);
    EXPECT_TRUE(cluster.runUntilWorkEnds(1));

    // The reply the client read still sits in the consumed slot of the
    // client-response ring (head has advanced past it).
    System &sys = cluster.system();
    const Addr ring_phys =
        sys.kernel().process(dep.clientPid).space->translate(
            topo::clientRespRingVa);
    const uint64_t head = sys.phys().read64(ring_phys);
    EXPECT_GE(head, 1u);
    const Addr slot = ring_phys + ring::headerBytes +
                      ((head - 1) % uint64_t(gen::ringSlots)) * 256;
    const uint64_t len = sys.phys().read64(slot);
    std::vector<uint8_t> payload(len);
    sys.phys().readBytes(slot + 8, payload.data(), len);
    return payload;
}

uint64_t
u64At(const std::vector<uint8_t> &bytes, size_t off)
{
    uint64_t v = 0;
    std::memcpy(&v, bytes.data() + off, 8);
    return v;
}

FunctionSpec
specNamed(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "no spec " << name;
    return {};
}

} // namespace

TEST(Workloads, FibonacciTiersAgreeAndAreCorrect)
{
    // Template n = 24: fib(24) with fib(0)=0 after 24 steps = 46368.
    const auto go = responseOf(specNamed("fibonacci-go"), IsaId::Riscv);
    const auto py =
        responseOf(specNamed("fibonacci-python"), IsaId::Riscv);
    const auto js =
        responseOf(specNamed("fibonacci-nodejs"), IsaId::Riscv);
    ASSERT_EQ(go.size(), 8u);
    EXPECT_EQ(u64At(go, 0), 46368u);
    EXPECT_EQ(go, py);
    EXPECT_EQ(go, js);
}

TEST(Workloads, FibonacciSameAcrossIsas)
{
    const auto rv = responseOf(specNamed("fibonacci-go"), IsaId::Riscv);
    const auto cx = responseOf(specNamed("fibonacci-go"), IsaId::Cx86);
    EXPECT_EQ(rv, cx);
}

TEST(Workloads, AesCompiledMatchesBytecode)
{
    const auto go = responseOf(specNamed("aes-go"), IsaId::Riscv);
    const auto py = responseOf(specNamed("aes-python"), IsaId::Riscv);
    ASSERT_EQ(go.size(), 64u);
    EXPECT_EQ(go, py);

    // Host reference: the same sbox cipher over the template payload.
    uint8_t sbox[256];
    for (int i = 0; i < 256; ++i)
        sbox[i] = uint8_t((i * 167 + 13) & 0xff);
    for (int j = 0; j < 64; ++j) {
        uint8_t s = uint8_t(j * 31 + 7); // the request template payload
        for (int r = 0; r < 10; ++r)
            s = sbox[(s ^ r ^ j) & 0xff];
        ASSERT_EQ(go[size_t(j)], s) << "byte " << j;
    }
}

TEST(Workloads, AuthAcceptsValidUser)
{
    const auto go = responseOf(specNamed("auth-go"), IsaId::Riscv);
    const auto py = responseOf(specNamed("auth-python"), IsaId::Riscv);
    ASSERT_GE(go.size(), 8u);
    EXPECT_EQ(u64At(go, 0), 1u); // uid 7 is in the credential table
    EXPECT_EQ(u64At(py, 0), 1u);
}

TEST(Workloads, PaymentLuhnValidCard)
{
    const auto node =
        responseOf(specNamed("payment-nodejs"), IsaId::Riscv);
    ASSERT_GE(node.size(), 16u);
    EXPECT_EQ(u64At(node, 0), 1u); // template card is Luhn-valid
}

TEST(Workloads, CurrencyTiersAgree)
{
    // nodejs interprets on request 1; compare against the compiled
    // result by reading the Go-equivalent math on the host.
    const auto node =
        responseOf(specNamed("currency-nodejs"), IsaId::Riscv);
    ASSERT_GE(node.size(), 16u);
    const uint64_t amount = 123456789, from = 12 & 31, to = (from + 7) & 31;
    uint64_t out = ((amount * (900000 + from * 3571)) >> 20);
    out = (out * (900000 + to * 3571)) >> 20;
    EXPECT_EQ(u64At(node, 0), out);
    EXPECT_EQ(u64At(node, 8), to);
}

TEST(Workloads, CatalogReturnsRequestedProduct)
{
    const auto resp =
        responseOf(specNamed("productcatalog-go"), IsaId::Riscv);
    ASSERT_EQ(resp.size(), 64u);
    EXPECT_EQ(u64At(resp, 0), 37u);            // product id
    EXPECT_EQ(u64At(resp, 8), 990 + 37 * 37u); // price formula
}

TEST(Workloads, HotelUserRespondsDeterministically)
{
    const auto a = responseOf(specNamed("user"), IsaId::Riscv);
    const auto b = responseOf(specNamed("user"), IsaId::Riscv);
    ASSERT_EQ(a.size(), 16u);
    EXPECT_EQ(a, b); // fully deterministic end to end
}

TEST(Workloads, RegistryIsComplete)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        ASSERT_TRUE(workloads::hasWorkload(spec.workload)) << spec.name;
        const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
        EXPECT_FALSE(impl.requestTemplate.empty()) << spec.name;
        if (spec.tier != RuntimeTier::Go)
            EXPECT_TRUE(bool(impl.makeBytecode)) << spec.name;
        if (spec.tier != RuntimeTier::Python)
            EXPECT_TRUE(bool(impl.emitCompiled)) << spec.name;
    }
    EXPECT_EQ(workloads::standaloneSuite().size(), 9u);
    EXPECT_EQ(workloads::onlineShopSuite().size(), 6u);
    EXPECT_EQ(workloads::hotelSuite().size(), 6u);
    EXPECT_EQ(workloads::goFunctions().size(), 3u + 2u + 6u);
    EXPECT_EQ(workloads::pythonFunctions().size(), 3u + 2u);
}

TEST(Workloads, ExtendedSuiteTiersAgree)
{
    for (const char *wl : {"compression", "jsonserdes"}) {
        FunctionSpec go, py;
        for (const FunctionSpec &spec : workloads::extendedSuite()) {
            if (spec.workload == wl && spec.tier == RuntimeTier::Go)
                go = spec;
            if (spec.workload == wl && spec.tier == RuntimeTier::Python)
                py = spec;
        }
        const auto a = responseOf(go, IsaId::Riscv);
        const auto b = responseOf(py, IsaId::Riscv);
        ASSERT_GT(a.size(), 8u) << wl;
        // The json hash word differs between tiers (different FNV
        // widths, like auth); compare the algorithmic fields only.
        const size_t compare =
            std::string(wl) == "jsonserdes" ? 16 : a.size();
        ASSERT_EQ(a.size(), b.size()) << wl;
        EXPECT_TRUE(std::equal(a.begin(), a.begin() + long(compare),
                               b.begin()))
            << wl;
    }
}

TEST(Workloads, CompressionRoundTripsOnHost)
{
    FunctionSpec spec;
    for (const FunctionSpec &s : workloads::extendedSuite()) {
        if (s.name == "compression-go")
            spec = s;
    }
    const auto resp = responseOf(spec, IsaId::Riscv);
    ASSERT_GT(resp.size(), 8u);
    const uint64_t encoded_len = u64At(resp, 0);
    ASSERT_EQ(encoded_len, resp.size());

    // Decode host-side and compare against the request template.
    const auto &tmpl =
        workloads::workloadImpl("compression").requestTemplate;
    std::vector<uint8_t> decoded;
    for (size_t off = 8; off + 1 < encoded_len; off += 2) {
        for (int k = 0; k < resp[off]; ++k)
            decoded.push_back(resp[off + 1]);
    }
    const std::vector<uint8_t> original(tmpl.begin() + 48, tmpl.end());
    EXPECT_EQ(decoded, original);
}

TEST(Workloads, JsonSumsFieldsCorrectly)
{
    FunctionSpec spec;
    for (const FunctionSpec &s : workloads::extendedSuite()) {
        if (s.name == "jsonserdes-go")
            spec = s;
    }
    const auto resp = responseOf(spec, IsaId::Riscv);
    ASSERT_EQ(resp.size(), 24u);

    // Host-side reference over the same template text.
    const auto &tmpl =
        workloads::workloadImpl("jsonserdes").requestTemplate;
    uint64_t sum = 0, fields = 0, val = 0;
    for (size_t i = 48; i < tmpl.size(); ++i) {
        const char c = char(tmpl[i]);
        if (c == ';') {
            sum += val;
            val = 0;
            ++fields;
        } else if (c >= '0' && c <= '9') {
            val = val * 10 + uint64_t(c - '0');
        }
    }
    EXPECT_EQ(u64At(resp, 0), fields);
    EXPECT_EQ(u64At(resp, 8), sum);
}
