/**
 * @file
 * Targeted microarchitecture tests: branch predictor learning,
 * store-to-load forwarding, O3 stat plausibility, and TLB behaviour
 * under context switches.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "cpu/branch_pred.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"

using namespace svb;

namespace
{

struct RunOutcome
{
    std::map<std::string, double> stats;
    uint64_t cycles = 0;
};

RunOutcome
runO3(gen::Program prog, IsaId isa = IsaId::Riscv)
{
    SystemConfig cfg = SystemConfig::paperConfig(isa);
    cfg.numCores = 1;
    System sys(cfg);
    LoadableImage image = gen::compileProgram(std::move(prog), isa);
    loadProcess(sys.kernel(), image, "t", 0);
    sys.scheduleIdleCores();
    sys.switchCpu(0, CpuModel::O3);
    RunOutcome out;
    out.cycles = sys.run(50'000'000);
    EXPECT_LT(out.cycles, 50'000'000u);
    out.stats = sys.stats().snapshotAll();
    return out;
}

} // namespace

TEST(BranchPredictorUnit, LearnsABiasedBranch)
{
    StatGroup stats("t");
    BranchPredictor bp(BranchPredParams{}, stats);
    StaticInst inst;
    inst.valid = true;
    inst.length = 4;
    inst.isControl = true;
    inst.isCondCtrl = true;
    inst.isDirectCtrl = true;
    inst.directOffset = -40;

    const Addr pc = 0x1000;
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        const auto pred = bp.predict(pc, inst, pc + 4);
        wrong += pred.taken != true;
        bp.update(pc, inst, true, pc - 40);
    }
    // gshare indexes with branch history, so the counter table needs
    // ~historyBits updates before every reached index saturates.
    EXPECT_LT(wrong, 20);
}

TEST(BranchPredictorUnit, RasPredictsReturns)
{
    StatGroup stats("t");
    BranchPredictor bp(BranchPredParams{}, stats);

    StaticInst call;
    call.valid = true;
    call.length = 4;
    call.isControl = true;
    call.isCall = true;
    call.isDirectCtrl = true;
    call.directOffset = 0x100;

    StaticInst ret;
    ret.valid = true;
    ret.length = 4;
    ret.isControl = true;
    ret.isReturn = true;

    bp.predict(0x2000, call, 0x2004); // pushes 0x2004
    const auto pred = bp.predict(0x2100, ret, 0x2104);
    EXPECT_TRUE(pred.taken);
    EXPECT_EQ(pred.nextPc, 0x2004u);
}

TEST(BranchPredictorUnit, BtbLearnsIndirectTargets)
{
    StatGroup stats("t");
    BranchPredictor bp(BranchPredParams{}, stats);
    StaticInst ind;
    ind.valid = true;
    ind.length = 4;
    ind.isControl = true; // indirect, unconditional, not a return

    const Addr pc = 0x3000;
    auto first = bp.predict(pc, ind, pc + 4);
    EXPECT_EQ(first.nextPc, pc + 4); // BTB cold: falls through
    bp.update(pc, ind, true, 0x7777000);
    auto second = bp.predict(pc, ind, pc + 4);
    EXPECT_EQ(second.nextPc, 0x7777000u);
}

TEST(O3Micro, PredictableLoopHasFewMispredicts)
{
    gen::ProgramBuilder pb;
    auto f = pb.beginFunction("main", 0);
    const int i = f.newVreg(), acc = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.movi(i, 0);
    f.movi(acc, 0);
    f.label(loop);
    f.brcondi(gen::CondOp::Ge, i, 10000, done);
    f.bin(gen::BinOp::Add, acc, acc, i);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);
    f.ret();
    pb.setEntry("main");

    const RunOutcome out = runO3(pb.take());
    const double branches = out.stats.at("system.cpu0.o3.numBranches");
    const double mispredicts =
        out.stats.at("system.cpu0.o3.branchMispredicts");
    EXPECT_GT(branches, 10000);
    EXPECT_LT(mispredicts / branches, 0.02);
}

TEST(O3Micro, DataDependentBranchesMispredictMore)
{
    // Branch on a pseudo-random bit: ~50% mispredict territory.
    gen::ProgramBuilder pb;
    auto f = pb.beginFunction("main", 0);
    const int i = f.newVreg(), x = f.newVreg(), t = f.newVreg(),
              acc = f.newVreg();
    const int loop = f.newLabel(), skip = f.newLabel(),
              done = f.newLabel();
    f.movi(i, 0);
    f.movi(acc, 0);
    f.movi(x, 0x9e3779b9);
    f.label(loop);
    f.brcondi(gen::CondOp::Ge, i, 4000, done);
    f.bini(gen::BinOp::Mul, x, x, 6364136223846793005LL & 0x7fffffff);
    f.bini(gen::BinOp::Add, x, x, 12345);
    f.bini(gen::BinOp::Shr, t, x, 17);
    f.bini(gen::BinOp::And, t, t, 1);
    f.brcondi(gen::CondOp::Eq, t, 0, skip);
    f.bini(gen::BinOp::Add, acc, acc, 3);
    f.label(skip);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);
    f.ret();
    pb.setEntry("main");

    const RunOutcome out = runO3(pb.take());
    const double mispredicts =
        out.stats.at("system.cpu0.o3.branchMispredicts");
    EXPECT_GT(mispredicts, 500); // a hard branch stream really costs
}

TEST(O3Micro, StoreToLoadForwardingHappens)
{
    // A tight store-then-load-same-address loop must forward.
    gen::ProgramBuilder pb;
    pb.addZeroData(64);
    auto f = pb.beginFunction("main", 0);
    const int i = f.newVreg(), v = f.newVreg(), ptr = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.lea(ptr, layout::dataBase);
    f.movi(i, 0);
    f.label(loop);
    f.brcondi(gen::CondOp::Ge, i, 2000, done);
    f.store(ptr, 0, i, 8);
    f.load(v, ptr, 0, 8, false);
    f.bin(gen::BinOp::Add, i, i, v); // i += i (doubling via memory)
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);
    f.ret();
    pb.setEntry("main");

    const RunOutcome out = runO3(pb.take());
    EXPECT_GT(out.stats.at("system.cpu0.o3.forwardedLoads"), 5.0);
}

TEST(O3Micro, UopsExceedInstsOnCx86Only)
{
    // Call-heavy code: CX86 call/ret/push/pop crack to multiple uops,
    // RV64 calls stay one-instruction-one-uop.
    auto mk = [] {
        gen::ProgramBuilder pb;
        {
            auto f = pb.beginFunction("leaf", 1);
            const int r = f.newVreg();
            f.bini(gen::BinOp::Add, r, f.arg(0), 1);
            f.ret(r);
        }
        auto f = pb.beginFunction("main", 0);
        const int i = f.newVreg(), x = f.newVreg();
        const int loop = f.newLabel(), done = f.newLabel();
        f.movi(i, 0);
        f.movi(x, 0);
        f.label(loop);
        f.brcondi(gen::CondOp::Ge, i, 2000, done);
        const int r = f.call(pb.functionIndex("leaf"), {x});
        f.mov(x, r);
        f.addi(i, i, 1);
        f.br(loop);
        f.label(done);
        f.ret();
        pb.setEntry("main");
        return pb.take();
    };

    const RunOutcome rv = runO3(mk(), IsaId::Riscv);
    const RunOutcome cx = runO3(mk(), IsaId::Cx86);
    const double rv_ratio = rv.stats.at("system.cpu0.o3.numUops") /
                            rv.stats.at("system.cpu0.o3.numInsts");
    const double cx_ratio = cx.stats.at("system.cpu0.o3.numUops") /
                            cx.stats.at("system.cpu0.o3.numInsts");
    EXPECT_NEAR(rv_ratio, 1.0, 0.01); // RV64: 1 uop per inst
    EXPECT_GT(cx_ratio, 1.05);        // CISC cracking shows up
}

TEST(O3Micro, IpcIsPlausible)
{
    // Independent ALU work should sustain well over 1 IPC on the
    // 4-wide core but below the width bound.
    gen::ProgramBuilder pb;
    auto f = pb.beginFunction("main", 0);
    const int a = f.imm(1), b = f.imm(2), c = f.imm(3), d = f.imm(5);
    const int i = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.movi(i, 0);
    f.label(loop);
    f.brcondi(gen::CondOp::Ge, i, 3000, done);
    for (int k = 0; k < 8; ++k) {
        f.bini(gen::BinOp::Add, a, a, 1);
        f.bini(gen::BinOp::Add, b, b, 1);
        f.bini(gen::BinOp::Add, c, c, 1);
        f.bini(gen::BinOp::Add, d, d, 1);
    }
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);
    f.ret();
    pb.setEntry("main");

    const RunOutcome out = runO3(pb.take());
    const double ipc = out.stats.at("system.cpu0.o3.numInsts") /
                       out.stats.at("system.cpu0.o3.numCycles");
    EXPECT_GT(ipc, 1.5);
    EXPECT_LT(ipc, 4.0);
}

TEST(O3Micro, TlbMissesAfterContextSwitchStorm)
{
    // Two processes ping-ponging on one core flush TLBs constantly.
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);

    auto mkYielder = [&] {
        gen::ProgramBuilder pb;
        auto f = pb.beginFunction("main", 0);
        const int i = f.newVreg();
        const int loop = f.newLabel(), done = f.newLabel();
        f.movi(i, 0);
        f.label(loop);
        f.brcondi(gen::CondOp::Ge, i, 200, done);
        f.syscall(sys::sysYield, {});
        f.addi(i, i, 1);
        f.br(loop);
        f.label(done);
        f.ret();
        pb.setEntry("main");
        return gen::compileProgram(pb.take(), IsaId::Riscv);
    };
    loadProcess(sys.kernel(), mkYielder(), "a", 0);
    loadProcess(sys.kernel(), mkYielder(), "b", 0);
    sys.scheduleIdleCores();
    sys.run(5'000'000);

    const auto snap = sys.stats().snapshotAll();
    EXPECT_GT(snap.at("system.cpu0.atomic.itlb.flushes"), 300.0);
    EXPECT_GT(snap.at("system.cpu0.atomic.itlb.misses"), 300.0);
    EXPECT_GT(snap.at("system.kernel.contextSwitches"), 300.0);
}
