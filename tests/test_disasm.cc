/**
 * @file
 * Disassembler and tracing tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "guest/syscall_abi.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"
#include "isa/cx86/assembler.hh"
#include "isa/disasm.hh"
#include "isa/riscv/assembler.hh"

using namespace svb;

TEST(Disasm, RiscvRegisterNamesAndTargets)
{
    riscv::Assembler as;
    AsmLabel l = as.newLabel();
    as.add(rv::a0, rv::a1, rv::s3);
    as.beq(rv::t0, rv::zero, l);
    as.ld(rv::s0, rv::sp, 24);
    as.bind(l);
    as.ecall();
    const auto lines = disassembleBuffer(as.finish(), IsaId::Riscv, {},
                                         0x1000);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0].text, "add a0, a1, s3");
    EXPECT_NE(lines[1].text.find("beq"), std::string::npos);
    EXPECT_NE(lines[1].text.find("0x100c"), std::string::npos);
    EXPECT_NE(lines[2].text.find("s0"), std::string::npos);
    EXPECT_NE(lines[2].text.find("sp"), std::string::npos);
    EXPECT_EQ(lines[3].text, "ecall");
}

TEST(Disasm, Cx86ShowsUopExpansion)
{
    cx86::Assembler as;
    as.push(cx::rbp);
    as.ret();
    const auto lines = disassembleBuffer(as.finish(), IsaId::Cx86);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].text.find("push"), std::string::npos);
    EXPECT_NE(lines[0].text.find("{"), std::string::npos); // cracked
    EXPECT_NE(lines[1].text.find("ret"), std::string::npos);
    EXPECT_NE(lines[1].text.find("jmpr ut0"), std::string::npos);
}

TEST(Disasm, SymbolsAnnotateLines)
{
    riscv::Assembler as;
    as.nop();
    as.nop();
    const auto lines = disassembleBuffer(
        as.finish(), IsaId::Riscv, {{"f0", 0}, {"f1", 4}});
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].symbol, "f0");
    EXPECT_EQ(lines[1].symbol, "f1");
}

TEST(Disasm, InvalidBytesDoNotDerail)
{
    const std::vector<uint8_t> junk = {0xff, 0xff, 0xee, 0x00, 0x00};
    const auto lines = disassembleBuffer(junk, IsaId::Cx86);
    EXPECT_GE(lines.size(), 1u);
    EXPECT_EQ(lines[0].text, "<invalid>");
}

TEST(Trace, SinkSeesCommittedInstructions)
{
    gen::ProgramBuilder pb;
    auto f = pb.beginFunction("main", 0);
    const int a = f.imm(1), b = f.imm(2), c = f.newVreg();
    f.bin(gen::BinOp::Add, c, a, b);
    f.ret();
    pb.setEntry("main");

    for (CpuModel model : {CpuModel::Atomic, CpuModel::O3}) {
        SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
        cfg.numCores = 1;
        System sys(cfg);
        LoadableImage image =
            gen::compileProgram(pb.program(), IsaId::Riscv);
        loadProcess(sys.kernel(), image, "t", 0);
        sys.scheduleIdleCores();
        sys.switchCpu(0, model);

        std::vector<Addr> pcs;
        sys.cpu(0).setTraceSink([&](Addr pc, const StaticInst &inst) {
            EXPECT_TRUE(inst.valid);
            pcs.push_back(pc);
        });
        sys.run(1'000'000);
        ASSERT_GT(pcs.size(), 5u);
        EXPECT_EQ(pcs.front(), layout::codeBase); // _start's first inst
        // pcs are committed in program order: strictly forward through
        // the straight-line _start prologue.
        EXPECT_GT(pcs[1], pcs[0]);
    }
}

TEST(Trace, StatsDumpStreamReceivesM5Dump)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System machine(cfg);
    std::ostringstream dump;
    machine.setStatsDumpStream(&dump);

    gen::ProgramBuilder pb;
    auto f = pb.beginFunction("main", 0);
    const int op = f.imm(int64_t(sys::m5DumpStats));
    const int arg = f.imm(0);
    f.syscall(sys::sysM5, {op, arg});
    f.ret();
    pb.setEntry("main");
    loadProcess(machine.kernel(),
                gen::compileProgram(pb.take(), IsaId::Riscv), "t", 0);
    machine.scheduleIdleCores();
    machine.run(1'000'000);

    EXPECT_NE(dump.str().find("Begin Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(dump.str().find("system.cpu0.atomic.numInsts"),
              std::string::npos);
}
