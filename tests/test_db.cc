/**
 * @file
 * Database container tests: boot each store, drive the KV protocol
 * through its rings from a guest client, and validate the seeded
 * values against the host-side replication of genValue/keyOf.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.hh"
#include "gen/guestlib.hh"
#include "stack/topology.hh"

using namespace svb;

namespace
{

/** Host-side replica of kv.keyOf (must match kvproto.cc). */
uint64_t
keyOf(uint64_t id)
{
    uint64_t k = (id + 1) * 0x9e3779b97f4a7c15ULL;
    k ^= k >> 29;
    return k | 1;
}

/** Host-side replica of db.genValue (must match store_gen.cc). */
std::vector<uint8_t>
genValue(uint64_t key, uint64_t len)
{
    std::vector<uint8_t> out(len);
    for (uint64_t j = 0; j < len; j += 8) {
        const uint64_t w = (key + j * 0x9e37) * 0xff51afd7ed558ccdULL;
        std::memcpy(out.data() + j, &w, 8);
    }
    return out;
}

/**
 * A guest driver that issues one GET and one PUT+GET through the
 * store rings and records the outcomes in its data segment.
 */
struct Driver
{
    Addr getLen = 0;     ///< observed value length of GET(keyOf(id))
    Addr getHash = 0;    ///< FNV of the fetched value
    Addr putRound = 0;   ///< re-fetched value after a PUT
    LoadedProgram prog;
};

Driver
deployDriver(System &sys, Addr rings_phys, uint64_t record_id)
{
    gen::ProgramBuilder pb;
    Driver d;
    d.getLen = pb.addZeroData(8);
    d.getHash = pb.addZeroData(8);
    d.putRound = pb.addZeroData(8);
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);
    const kv::KvClient kvc = kv::emitKvClient(pb, lib);

    auto f = pb.beginFunction("main", 0);
    const int64_t buf_off = f.localBytes(240);
    const int rg = f.newVreg(), buf = f.newVreg(), out = f.newVreg();
    f.movi(rg, int64_t(topo::dbReqRingVa));
    f.leaLocal(buf, buf_off);

    // GET a seeded record.
    const int id = f.imm(int64_t(record_id));
    const int key = f.call(kvc.keyOf, {id});
    const int len = f.call(kvc.get, {rg, key, buf});
    f.lea(out, d.getLen);
    f.store(out, 0, len, 8);
    const int h = f.call(lib.fnvHash, {buf, len});
    f.lea(out, d.getHash);
    f.store(out, 0, h, 8);

    // PUT a new record under a fresh key, then read it back.
    const int nkey = f.newVreg();
    f.bini(gen::BinOp::Xor, nkey, key, 0x1234);
    const int vlen = f.imm(64);
    f.callVoid(kvc.put, {rg, nkey, buf, vlen});
    const int len2 = f.call(kvc.get, {rg, nkey, buf});
    f.lea(out, d.putRound);
    f.store(out, 0, len2, 8);
    f.ret();
    pb.setEntry("main");

    d.prog = loadProcess(sys.kernel(),
                         gen::compileProgram(pb.take(), IsaId::Riscv),
                         "driver", topo::serverCore);
    mapSharedInto(sys.kernel(), d.prog.pid, layout::sharedBase,
                  rings_phys, topo::sharedRegionBytes);
    return d;
}

class DbKindTest : public ::testing::TestWithParam<db::DbKind>
{
};

} // namespace

TEST_P(DbKindTest, BootGetPutThroughRings)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.dbKind = GetParam();
    cfg.startDb = true;
    cfg.startMemcached = false;

    ServerlessCluster cluster(cfg);
    cluster.boot();
    System &sys = cluster.system();

    // Recover the shared-region base deterministically: the memcached
    // rings page region is allocated right after construction; use the
    // db process's mapping instead.
    const int db_pid = sys.kernel().findProcess(
        db::dbKindName(GetParam()));
    ASSERT_GE(db_pid, 0);
    const Addr rings_phys =
        sys.kernel().process(db_pid).space->translate(layout::sharedBase);

    const uint64_t record_id = 37;
    Driver driver = deployDriver(sys, rings_phys, record_id);
    sys.scheduleIdleCores();
    // The store spins forever by design; run until the driver exits.
    const uint64_t ran = sys.runUntil(
        [&] {
            return sys.kernel().process(driver.prog.pid).state ==
                   ProcState::Exited;
        },
        400'000'000);
    EXPECT_LT(ran, 400'000'000u) << "driver hung";

    const AddressSpace &as = *sys.kernel().process(driver.prog.pid).space;
    const uint64_t got_len = as.read(driver.getLen, 8);
    EXPECT_EQ(got_len, calib::hotelValueBytes)
        << db::dbKindName(GetParam());

    // Validate the value bytes via the replicated generator.
    const auto expect_value =
        genValue(keyOf(record_id), calib::hotelValueBytes);
    uint64_t expect_hash = 0xcbf29ce484222325ULL;
    for (uint8_t b : expect_value) {
        expect_hash ^= b;
        expect_hash *= 0x100000001b3ULL;
    }
    EXPECT_EQ(as.read(driver.getHash, 8), expect_hash);

    // PUT followed by GET returns the new record.
    EXPECT_EQ(as.read(driver.putRound, 8), 64u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, DbKindTest,
                         ::testing::Values(db::DbKind::Cassandra,
                                           db::DbKind::Mongo,
                                           db::DbKind::Maria));

TEST(Memcached, MissThenHit)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.startDb = false;
    cfg.startMemcached = true;

    ServerlessCluster cluster(cfg);
    cluster.boot();
    System &sys = cluster.system();
    const int mc_pid = sys.kernel().findProcess("memcached");
    ASSERT_GE(mc_pid, 0);
    const Addr rings_phys =
        sys.kernel().process(mc_pid).space->translate(layout::sharedBase);

    // Guest driver: GET(miss) -> PUT -> GET(hit) on the mc rings.
    gen::ProgramBuilder pb;
    const Addr miss_len = pb.addZeroData(8);
    const Addr hit_len = pb.addZeroData(8);
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);
    const kv::KvClient kvc = kv::emitKvClient(pb, lib);
    auto f = pb.beginFunction("main", 0);
    const int64_t buf_off = f.localBytes(240);
    const int rg = f.newVreg(), buf = f.newVreg(), out = f.newVreg();
    f.movi(rg, int64_t(topo::mcReqRingVa));
    f.leaLocal(buf, buf_off);
    const int key = f.imm(0x4242);
    const int l1 = f.call(kvc.get, {rg, key, buf});
    f.lea(out, miss_len);
    f.store(out, 0, l1, 8);
    const int vlen = f.imm(48);
    f.callVoid(kvc.put, {rg, key, buf, vlen});
    const int l2 = f.call(kvc.get, {rg, key, buf});
    f.lea(out, hit_len);
    f.store(out, 0, l2, 8);
    f.ret();
    pb.setEntry("main");

    LoadedProgram lp = loadProcess(
        sys.kernel(), gen::compileProgram(pb.take(), IsaId::Riscv),
        "mcdriver", topo::serverCore);
    mapSharedInto(sys.kernel(), lp.pid, layout::sharedBase, rings_phys,
                  topo::sharedRegionBytes);
    sys.scheduleIdleCores();
    ASSERT_LT(sys.runUntil(
                  [&] {
                      return sys.kernel().process(lp.pid).state ==
                             ProcState::Exited;
                  },
                  100'000'000),
              100'000'000u);

    const AddressSpace &as = *sys.kernel().process(lp.pid).space;
    EXPECT_EQ(as.read(miss_len, 8), 0u);
    EXPECT_EQ(as.read(hit_len, 8), 48u);
}

TEST(Db, CassandraBootsSlowerThanMongo)
{
    uint64_t boot_cycles[2] = {0, 0};
    const db::DbKind kinds[2] = {db::DbKind::Cassandra,
                                 db::DbKind::Mongo};
    for (int i = 0; i < 2; ++i) {
        ClusterConfig cfg;
        cfg.system = SystemConfig::paperConfig(IsaId::Riscv);
        cfg.dbKind = kinds[i];
        cfg.startDb = true;
        cfg.startMemcached = false;
        ServerlessCluster cluster(cfg);
        cluster.boot();
        boot_cycles[i] = cluster.system().cycle();
    }
    // The paper's Cassandra boots were ~25x Mongo-class boots; ours
    // must at least be several times slower.
    EXPECT_GT(boot_cycles[0], 3 * boot_cycles[1]);
}
