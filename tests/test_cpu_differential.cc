/**
 * @file
 * Differential CPU testing: randomly generated structured IR programs
 * must produce identical architectural results on the Atomic model
 * and the detailed out-of-order model, on both ISAs. This is the
 * strongest correctness check of the O3 pipeline (renaming, LSQ
 * forwarding, squash/recovery) against the simple reference model.
 *
 * The same harness also pins down the Atomic CPU's superblock fast
 * path (cpu/superblock.hh) against its per-instruction oracle: a
 * fast-tier system and a slow-tier system execute the same program in
 * cycle lockstep, and the full architectural context plus the entire
 * guest-visible stats tree must match at every chunk boundary — not
 * just at the end. A checkpoint taken mid-run must likewise restore
 * and resume through the fast tier byte-identically to the
 * uninterrupted machine.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "core/system.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"
#include "guest/syscall_abi.hh"
#include "sim/rng.hh"

using namespace svb;

namespace
{

/**
 * Generate a random but well-formed program: straight-line arithmetic,
 * bounded loops, loads/stores into a scratch array, calls into a
 * helper, and data-dependent branches. Writes a final FNV digest of
 * its scratch state to a result cell.
 */
gen::Program
randomProgram(uint64_t seed, Addr &result_addr)
{
    Rng rng(seed);
    gen::ProgramBuilder pb;
    result_addr = pb.addZeroData(8);
    const Addr scratch = pb.addZeroData(512);
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);

    // A helper the main function calls (exercises the call path).
    {
        auto f = pb.beginFunction("helper", 2);
        const int a = f.arg(0), b = f.arg(1);
        const int r = f.newVreg();
        f.bin(gen::BinOp::Mul, r, a, b);
        f.bini(gen::BinOp::Xor, r, r, int64_t(rng.nextBounded(1 << 20)));
        f.ret(r);
    }
    const int helper = pb.functionIndex("helper");

    auto f = pb.beginFunction("main", 0);
    const int base = f.newVreg();
    f.lea(base, scratch);

    // Registers to juggle — more than the CX86 pool, to force spills.
    std::vector<int> regs;
    for (int i = 0; i < 12; ++i) {
        const int v = f.newVreg();
        f.movi(v, int64_t(rng.nextBounded(1000)) + 1);
        regs.push_back(v);
    }
    auto pick = [&] { return regs[rng.nextBounded(regs.size())]; };

    // A bounded loop with a random body.
    const int i = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.movi(i, 0);
    f.label(loop);
    f.brcondi(gen::CondOp::Ge, i, int64_t(8 + rng.nextBounded(24)), done);

    const int body_ops = 6 + int(rng.nextBounded(14));
    for (int op = 0; op < body_ops; ++op) {
        switch (rng.nextBounded(8)) {
          case 0:
            f.bin(gen::BinOp::Add, pick(), pick(), pick());
            break;
          case 1:
            f.bin(gen::BinOp::Mul, pick(), pick(), pick());
            break;
          case 2:
            f.bini(gen::BinOp::Xor, pick(), pick(),
                   int64_t(rng.nextBounded(1 << 16)));
            break;
          case 3: { // store to a random slot
            const int addr = f.newVreg();
            f.bini(gen::BinOp::And, addr, pick(), 63);
            f.bini(gen::BinOp::Shl, addr, addr, 3);
            f.bin(gen::BinOp::Add, addr, base, addr);
            f.store(addr, 0, pick(), 8);
            break;
          }
          case 4: { // load from a random slot (forwarding chances)
            const int addr = f.newVreg();
            f.bini(gen::BinOp::And, addr, pick(), 63);
            f.bini(gen::BinOp::Shl, addr, addr, 3);
            f.bin(gen::BinOp::Add, addr, base, addr);
            f.load(pick(), addr, 0, 8, false);
            break;
          }
          case 5: { // data-dependent branch
            const int skip = f.newLabel();
            f.brcondi(gen::CondOp::Lt, pick(),
                      int64_t(rng.nextBounded(1 << 12)), skip);
            f.bini(gen::BinOp::Add, pick(), pick(), 17);
            f.label(skip);
            break;
          }
          case 6: { // call
            const int r = f.call(helper, {pick(), pick()});
            f.mov(pick(), r);
            break;
          }
          default: // a trap mid-flight (pipeline drain + kernel)
            f.syscall(sys::sysYield, {});
            break;
        }
    }
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);

    // Digest: hash the scratch region plus the register values.
    const int len = f.imm(512);
    const int h = f.call(lib.fnvHash, {base, len});
    for (int v : regs)
        f.bin(gen::BinOp::Xor, h, h, v);
    const int out = f.newVreg();
    f.lea(out, result_addr);
    f.store(out, 0, h, 8);
    f.ret();
    pb.setEntry("main");
    return pb.take();
}

uint64_t
runOn(const gen::Program &prog, IsaId isa, CpuModel model, Addr result)
{
    SystemConfig cfg = SystemConfig::paperConfig(isa);
    cfg.numCores = 1;
    System sys(cfg);
    LoadableImage image = gen::compileProgram(prog, isa);
    LoadedProgram lp = loadProcess(sys.kernel(), image, "rand", 0);
    sys.scheduleIdleCores();
    sys.switchCpu(0, model);
    const uint64_t ran = sys.run(80'000'000);
    EXPECT_LT(ran, 80'000'000u) << "program hung";
    EXPECT_TRUE(sys.cpu(0).halted());
    return sys.kernel().process(lp.pid).space->read(result, 8);
}

/**
 * A mostly-straight-line program whose hot function is large enough
 * (well over 4 KiB of code on either ISA) that execution repeatedly
 * streams across instruction-page boundaries — the case where the
 * superblock engine must re-translate instead of chaining in-page.
 */
gen::Program
pageCrossProgram(Addr &result_addr)
{
    gen::ProgramBuilder pb;
    result_addr = pb.addZeroData(8);
    {
        auto f = pb.beginFunction("blob", 1);
        const int a = f.arg(0);
        for (int k = 0; k < 1500; ++k) {
            f.bini(k % 2 ? gen::BinOp::Add : gen::BinOp::Xor, a, a,
                   int64_t((uint64_t(k) * 2654435761u) & 0xffff));
        }
        f.ret(a);
    }
    const int blob = pb.functionIndex("blob");

    auto f = pb.beginFunction("main", 0);
    const int acc = f.newVreg();
    f.movi(acc, 0x9e3779b9);
    const int i = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.movi(i, 0);
    f.label(loop);
    f.brcondi(gen::CondOp::Ge, i, 4, done);
    const int r = f.call(blob, {acc});
    f.mov(acc, r);
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);
    const int out = f.newVreg();
    f.lea(out, result_addr);
    f.store(out, 0, acc, 8);
    f.ret();
    pb.setEntry("main");
    return pb.take();
}

/** A loaded, scheduled, not-yet-run system the tests step manually. */
struct LiveRun
{
    std::unique_ptr<System> sys;
    int pid = -1;
    Addr result = 0;

    uint64_t
    readResult() const
    {
        return sys->kernel().process(pid).space->read(result, 8);
    }
};

LiveRun
startRun(const gen::Program &prog, IsaId isa, bool fast_warm, Addr result)
{
    LiveRun r;
    SystemConfig cfg = SystemConfig::paperConfig(isa);
    cfg.numCores = 1;
    cfg.fastWarm = fast_warm;
    r.sys = std::make_unique<System>(cfg);
    LoadableImage image = gen::compileProgram(prog, isa);
    LoadedProgram lp = loadProcess(r.sys->kernel(), image, "rand", 0);
    r.pid = lp.pid;
    r.result = result;
    r.sys->scheduleIdleCores();
    return r;
}

void
expectSameContext(const HwContext &a, const HwContext &b,
                  const std::string &label)
{
    EXPECT_EQ(a.pc, b.pc) << label;
    EXPECT_EQ(a.regs, b.regs) << label;
    EXPECT_EQ(a.ptRoot, b.ptRoot) << label;
    EXPECT_EQ(a.processId, b.processId) << label;
    EXPECT_EQ(a.halted, b.halted) << label;
}

/** Compare two stats snapshots key by key, naming every divergence. */
void
expectSameSnapshots(const std::map<std::string, double> &a,
                    const std::map<std::string, double> &b,
                    const std::string &label)
{
    for (const auto &[key, value] : a) {
        const auto it = b.find(key);
        if (it == b.end())
            ADD_FAILURE() << label << ": stat " << key << " missing";
        else
            EXPECT_EQ(value, it->second) << label << ": stat " << key;
    }
    for (const auto &[key, value] : b) {
        if (!a.count(key))
            ADD_FAILURE() << label << ": unexpected stat " << key;
    }
}

/**
 * Run the fast-tier and slow-tier systems in cycle lockstep: after
 * every chunk the architectural context, the global cycle, and the
 * whole guest-visible stats tree (host-only groups are excluded by
 * snapshotAll()) must agree exactly. Chunk boundaries deliberately
 * fall mid-block, mid-stall, and between a syscall and its resumption,
 * so the fast path's cursor save/restore is exercised too.
 */
void
lockstepFastSlow(const gen::Program &prog, Addr result, IsaId isa,
                 const std::string &what)
{
    LiveRun fast = startRun(prog, isa, true, result);
    LiveRun slow = startRun(prog, isa, false, result);

    const uint64_t chunk = 2048;
    const uint64_t maxChunks = 80'000'000 / chunk;
    for (uint64_t n = 0; n < maxChunks && !slow.sys->cpu(0).halted();
         ++n) {
        const uint64_t rf = fast.sys->run(chunk);
        const uint64_t rs = slow.sys->run(chunk);
        const std::string label =
            what + " " + isaInfo(isa).name + " cycle " +
            std::to_string(slow.sys->cycle());
        ASSERT_EQ(rf, rs) << label << ": tiers ran different cycle counts";
        ASSERT_EQ(fast.sys->cycle(), slow.sys->cycle()) << label;
        expectSameContext(fast.sys->cpu(0).getContext(),
                          slow.sys->cpu(0).getContext(), label);
        expectSameSnapshots(fast.sys->stats().snapshotAll(),
                            slow.sys->stats().snapshotAll(), label);
        if (::testing::Test::HasFailure())
            return; // first divergence located; the rest is noise
    }
    ASSERT_TRUE(slow.sys->cpu(0).halted()) << what << ": program hung";
    ASSERT_TRUE(fast.sys->cpu(0).halted()) << what << ": fast tier hung";
    EXPECT_EQ(fast.readResult(), slow.readResult()) << what;
}

} // namespace

class DifferentialTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DifferentialTest, AtomicAndO3AgreeOnBothIsas)
{
    const uint64_t seed = GetParam();
    Addr result = 0;
    gen::Program prog = randomProgram(seed, result);

    const uint64_t rv_atomic =
        runOn(prog, IsaId::Riscv, CpuModel::Atomic, result);
    const uint64_t rv_o3 = runOn(prog, IsaId::Riscv, CpuModel::O3, result);
    EXPECT_EQ(rv_atomic, rv_o3) << "riscv atomic/o3 divergence, seed "
                                << seed;

    const uint64_t cx_atomic =
        runOn(prog, IsaId::Cx86, CpuModel::Atomic, result);
    const uint64_t cx_o3 = runOn(prog, IsaId::Cx86, CpuModel::O3, result);
    EXPECT_EQ(cx_atomic, cx_o3) << "cx86 atomic/o3 divergence, seed "
                                << seed;

    // The program is ISA-independent IR: both ISAs must agree too.
    EXPECT_EQ(rv_atomic, cx_atomic) << "cross-ISA divergence, seed "
                                    << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t(1), uint64_t(25)));

class FastSlowLockstepTest : public ::testing::TestWithParam<uint64_t>
{
};

// The random programs mix syscalls (sysYield traps mid-block), calls,
// data-dependent branches and loads/stores — the trap and side-exit
// cases of the superblock engine.
TEST_P(FastSlowLockstepTest, ArchStateAndStatsMatchOnBothIsas)
{
    const uint64_t seed = GetParam();
    Addr result = 0;
    const gen::Program prog = randomProgram(seed, result);
    lockstepFastSlow(prog, result, IsaId::Riscv,
                     "seed " + std::to_string(seed));
    lockstepFastSlow(prog, result, IsaId::Cx86,
                     "seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastSlowLockstepTest,
                         ::testing::Range(uint64_t(1), uint64_t(9)));

// Instruction streams crossing 4 KiB code-page boundaries: the fast
// path must re-translate at every page edge exactly like the oracle.
TEST(FastSlowLockstepTest, PageCrossingCodeMatches)
{
    Addr result = 0;
    const gen::Program prog = pageCrossProgram(result);
    lockstepFastSlow(prog, result, IsaId::Riscv, "pagecross");
    lockstepFastSlow(prog, result, IsaId::Cx86, "pagecross");
}

namespace
{

/**
 * Save a warm (uarch-carrying) checkpoint mid-run, restore it into
 * fresh systems — one resuming through the fast tier, one through the
 * per-instruction path — and require the remainder of the run to be
 * byte-identical to the uninterrupted machine: same cycle count, same
 * final context, same guest result, same stats tree. Statistics are
 * rebased at the checkpoint moment on every system because checkpoints
 * carry no stats (same contract as the experiment harness).
 */
void
checkpointFastResume(IsaId isa)
{
    Addr result = 0;
    const gen::Program prog = randomProgram(7, result);
    LiveRun ref = startRun(prog, isa, true, result);

    const uint64_t lead = 4'000;
    ASSERT_EQ(ref.sys->run(lead), lead)
        << "program finished before the checkpoint";
    ASSERT_FALSE(ref.sys->cpu(0).halted());
    const Checkpoint cp = ref.sys->saveCheckpoint(true);

    ref.sys->stats().resetAll();
    const uint64_t ranRef = ref.sys->run(80'000'000);
    ASSERT_LT(ranRef, 80'000'000u) << "program hung";
    ASSERT_TRUE(ref.sys->cpu(0).halted());
    const HwContext ctxRef = ref.sys->cpu(0).getContext();
    const auto snapRef = ref.sys->stats().snapshotAll();
    const uint64_t resultRef = ref.readResult();

    for (const bool fast : {true, false}) {
        // Restore requires an identically built machine: same config,
        // same loaded processes (the cluster's restore path rebuilds
        // the workload first, then restores over it).
        LiveRun resumed = startRun(prog, isa, fast, result);
        System &sys = *resumed.sys;
        sys.restoreCheckpoint(cp);
        const std::string label = std::string("resume tier ") +
                                  (fast ? "fast " : "slow ") +
                                  isaInfo(isa).name;
        // The checkpointed superblock anchors must have re-formed
        // (only observable when the env leaves the fast tier on).
        if (sys.fastPathEnabled()) {
            EXPECT_GT(sys.superblocks().size(), 0u) << label;
        }
        sys.stats().resetAll();
        const uint64_t ran = sys.run(80'000'000);
        EXPECT_EQ(ran, ranRef) << label;
        EXPECT_TRUE(sys.cpu(0).halted()) << label;
        expectSameContext(sys.cpu(0).getContext(), ctxRef, label);
        expectSameSnapshots(sys.stats().snapshotAll(), snapRef, label);
        EXPECT_EQ(sys.kernel().process(ref.pid).space->read(result, 8),
                  resultRef)
            << label;
    }
}

} // namespace

TEST(FastResumeTest, CheckpointRestoreResumesByteIdenticalRiscv)
{
    checkpointFastResume(IsaId::Riscv);
}

TEST(FastResumeTest, CheckpointRestoreResumesByteIdenticalCx86)
{
    checkpointFastResume(IsaId::Cx86);
}
