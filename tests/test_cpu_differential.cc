/**
 * @file
 * Differential CPU testing: randomly generated structured IR programs
 * must produce identical architectural results on the Atomic model
 * and the detailed out-of-order model, on both ISAs. This is the
 * strongest correctness check of the O3 pipeline (renaming, LSQ
 * forwarding, squash/recovery) against the simple reference model.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"
#include "guest/syscall_abi.hh"
#include "sim/rng.hh"

using namespace svb;

namespace
{

/**
 * Generate a random but well-formed program: straight-line arithmetic,
 * bounded loops, loads/stores into a scratch array, calls into a
 * helper, and data-dependent branches. Writes a final FNV digest of
 * its scratch state to a result cell.
 */
gen::Program
randomProgram(uint64_t seed, Addr &result_addr)
{
    Rng rng(seed);
    gen::ProgramBuilder pb;
    result_addr = pb.addZeroData(8);
    const Addr scratch = pb.addZeroData(512);
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);

    // A helper the main function calls (exercises the call path).
    {
        auto f = pb.beginFunction("helper", 2);
        const int a = f.arg(0), b = f.arg(1);
        const int r = f.newVreg();
        f.bin(gen::BinOp::Mul, r, a, b);
        f.bini(gen::BinOp::Xor, r, r, int64_t(rng.nextBounded(1 << 20)));
        f.ret(r);
    }
    const int helper = pb.functionIndex("helper");

    auto f = pb.beginFunction("main", 0);
    const int base = f.newVreg();
    f.lea(base, scratch);

    // Registers to juggle — more than the CX86 pool, to force spills.
    std::vector<int> regs;
    for (int i = 0; i < 12; ++i) {
        const int v = f.newVreg();
        f.movi(v, int64_t(rng.nextBounded(1000)) + 1);
        regs.push_back(v);
    }
    auto pick = [&] { return regs[rng.nextBounded(regs.size())]; };

    // A bounded loop with a random body.
    const int i = f.newVreg();
    const int loop = f.newLabel(), done = f.newLabel();
    f.movi(i, 0);
    f.label(loop);
    f.brcondi(gen::CondOp::Ge, i, int64_t(8 + rng.nextBounded(24)), done);

    const int body_ops = 6 + int(rng.nextBounded(14));
    for (int op = 0; op < body_ops; ++op) {
        switch (rng.nextBounded(8)) {
          case 0:
            f.bin(gen::BinOp::Add, pick(), pick(), pick());
            break;
          case 1:
            f.bin(gen::BinOp::Mul, pick(), pick(), pick());
            break;
          case 2:
            f.bini(gen::BinOp::Xor, pick(), pick(),
                   int64_t(rng.nextBounded(1 << 16)));
            break;
          case 3: { // store to a random slot
            const int addr = f.newVreg();
            f.bini(gen::BinOp::And, addr, pick(), 63);
            f.bini(gen::BinOp::Shl, addr, addr, 3);
            f.bin(gen::BinOp::Add, addr, base, addr);
            f.store(addr, 0, pick(), 8);
            break;
          }
          case 4: { // load from a random slot (forwarding chances)
            const int addr = f.newVreg();
            f.bini(gen::BinOp::And, addr, pick(), 63);
            f.bini(gen::BinOp::Shl, addr, addr, 3);
            f.bin(gen::BinOp::Add, addr, base, addr);
            f.load(pick(), addr, 0, 8, false);
            break;
          }
          case 5: { // data-dependent branch
            const int skip = f.newLabel();
            f.brcondi(gen::CondOp::Lt, pick(),
                      int64_t(rng.nextBounded(1 << 12)), skip);
            f.bini(gen::BinOp::Add, pick(), pick(), 17);
            f.label(skip);
            break;
          }
          case 6: { // call
            const int r = f.call(helper, {pick(), pick()});
            f.mov(pick(), r);
            break;
          }
          default: // a trap mid-flight (pipeline drain + kernel)
            f.syscall(sys::sysYield, {});
            break;
        }
    }
    f.addi(i, i, 1);
    f.br(loop);
    f.label(done);

    // Digest: hash the scratch region plus the register values.
    const int len = f.imm(512);
    const int h = f.call(lib.fnvHash, {base, len});
    for (int v : regs)
        f.bin(gen::BinOp::Xor, h, h, v);
    const int out = f.newVreg();
    f.lea(out, result_addr);
    f.store(out, 0, h, 8);
    f.ret();
    pb.setEntry("main");
    return pb.take();
}

uint64_t
runOn(const gen::Program &prog, IsaId isa, CpuModel model, Addr result)
{
    SystemConfig cfg = SystemConfig::paperConfig(isa);
    cfg.numCores = 1;
    System sys(cfg);
    LoadableImage image = gen::compileProgram(prog, isa);
    LoadedProgram lp = loadProcess(sys.kernel(), image, "rand", 0);
    sys.scheduleIdleCores();
    sys.switchCpu(0, model);
    const uint64_t ran = sys.run(80'000'000);
    EXPECT_LT(ran, 80'000'000u) << "program hung";
    EXPECT_TRUE(sys.cpu(0).halted());
    return sys.kernel().process(lp.pid).space->read(result, 8);
}

} // namespace

class DifferentialTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DifferentialTest, AtomicAndO3AgreeOnBothIsas)
{
    const uint64_t seed = GetParam();
    Addr result = 0;
    gen::Program prog = randomProgram(seed, result);

    const uint64_t rv_atomic =
        runOn(prog, IsaId::Riscv, CpuModel::Atomic, result);
    const uint64_t rv_o3 = runOn(prog, IsaId::Riscv, CpuModel::O3, result);
    EXPECT_EQ(rv_atomic, rv_o3) << "riscv atomic/o3 divergence, seed "
                                << seed;

    const uint64_t cx_atomic =
        runOn(prog, IsaId::Cx86, CpuModel::Atomic, result);
    const uint64_t cx_o3 = runOn(prog, IsaId::Cx86, CpuModel::O3, result);
    EXPECT_EQ(cx_atomic, cx_o3) << "cx86 atomic/o3 divergence, seed "
                                << seed;

    // The program is ISA-independent IR: both ISAs must agree too.
    EXPECT_EQ(rv_atomic, cx_atomic) << "cross-ISA divergence, seed "
                                    << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t(1), uint64_t(25)));
