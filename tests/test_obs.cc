/**
 * @file
 * The observability layer's contracts: trace export determinism
 * across worker counts, stat-tree snapshot/delta semantics and the
 * hierarchical JSON dump, RequestStats as a view over a named-stat
 * delta (byte-identical to reading the tree directly), the stall
 * partition invariant (causes sum to cycles on every measured
 * request, both ISAs), the RowSchema descriptor table, and the
 * unified RunSpec -> RunResult dispatch.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/parallel.hh"
#include "core/result_cache.hh"
#include "obs/stat_export.hh"
#include "obs/trace.hh"
#include "workloads/workloads.hh"

using namespace svb;

namespace
{

// Pin the environment before any lazy singleton reads it: the
// CheckpointStore must be disabled (a warm store would let one sweep
// restore where the other boots, changing the prepare-phase spans)
// and the stat dumps must land in a scratch directory.
const char *statDumpPath = "test_obs_statdump";
const bool envReady = [] {
    setenv("SVBENCH_NO_CKPT", "1", 1);
    setenv("SVBENCH_STATDUMP", statDumpPath, 1);
    return true;
}();

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

/**
 * Four cheap, pairwise-distinct cluster configurations (no store
 * containers; the dbKind only varies the runner/track identity).
 * Distinct configurations mean every job gets its own fresh-booted
 * runner at ANY worker count, so the recorded prepare phases — and
 * with them the whole trace — cannot depend on SVBENCH_JOBS.
 */
std::vector<SweepJob>
traceJobList()
{
    std::vector<SweepJob> jobs;
    const FunctionSpec spec = specFor("fibonacci-go");
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (db::DbKind kind : {db::DbKind::Cassandra, db::DbKind::Mongo}) {
            ClusterConfig cfg;
            cfg.system = SystemConfig::paperConfig(isa);
            cfg.dbKind = kind;
            cfg.startDb = false;
            cfg.startMemcached = false;
            jobs.push_back({cfg, spec,
                            &workloads::workloadImpl(spec.workload)});
        }
    }
    return jobs;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

struct TempCacheFile
{
    explicit TempCacheFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~TempCacheFile() { std::remove(path.c_str()); }
    std::string path;
};

/** Run the four-job sweep under @p jobs workers, returning the
 *  rendered trace JSON. */
std::string
sweepTrace(unsigned jobs, const std::string &cache_path)
{
    TempCacheFile file(cache_path);
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.reset();
    tracer.enable("test_obs_trace.json");
    ResultCache cache(file.path);
    const auto results = parallelSweep(cache, traceJobList(), jobs);
    for (const FunctionResult &res : results)
        EXPECT_TRUE(res.ok);
    std::ostringstream os;
    tracer.render(os);
    tracer.reset();
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------------
// Tracer unit behaviour
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledTracerHandsOutBadTracks)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.reset();
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.track("riscv/none/fn/o3"), obs::badTrack);
    // Recording to badTrack is a no-op, not a crash.
    tracer.record(obs::badTrack, "cold", "measure", 0, 10);
    std::ostringstream os;
    tracer.render(os);
    EXPECT_EQ(os.str(), "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n");
}

TEST(Tracer, TracksSortByNameAndKeepAppendOrder)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.reset();
    tracer.enable("test_obs_unit_trace.json");
    const obs::TrackId b = tracer.track("bbb");
    const obs::TrackId a = tracer.track("aaa");
    ASSERT_NE(a, obs::badTrack);
    ASSERT_NE(b, obs::badTrack);
    tracer.record(b, "late", "phase", 5, 2);
    tracer.record(a, "first", "phase", 0, 3);
    tracer.record(a, "second", "phase", 3, 1);

    std::ostringstream os;
    tracer.render(os);
    const std::string json = os.str();
    tracer.reset();

    // "aaa" must serialise before "bbb" regardless of creation order,
    // and aaa's events must stay in append order.
    const size_t posA = json.find("\"aaa\"");
    const size_t posB = json.find("\"bbb\"");
    ASSERT_NE(posA, std::string::npos);
    ASSERT_NE(posB, std::string::npos);
    EXPECT_LT(posA, posB);
    EXPECT_LT(json.find("\"first\""), json.find("\"second\""));
    // Both phase events carry the Chrome complete-event tag.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stat snapshot / delta / JSON export
// ---------------------------------------------------------------------------

TEST(StatExport, DeltaSubtractsAndDefaultsMissingBefore)
{
    const obs::StatSnapshot before = {{"a", 10.0}, {"b", 2.0}};
    const obs::StatSnapshot after = {{"a", 25.0}, {"b", 2.0}, {"c", 7.0}};
    const obs::StatSnapshot d = obs::delta(before, after);
    EXPECT_DOUBLE_EQ(obs::statValue(d, "a"), 15.0);
    EXPECT_DOUBLE_EQ(obs::statValue(d, "b"), 0.0);
    EXPECT_DOUBLE_EQ(obs::statValue(d, "c"), 7.0);
    EXPECT_DOUBLE_EQ(obs::statValue(d, "absent"), 0.0);
}

TEST(StatExport, WriteJsonNestsDottedNames)
{
    const obs::StatSnapshot snap = {
        {"system.cpu0.a", 1.0}, {"system.cpu0.b", 2.5}, {"top", 3.0}};
    std::ostringstream os;
    obs::writeJson(os, snap);
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"system\": {\n"
              "    \"cpu0\": {\n"
              "      \"a\": 1,\n"
              "      \"b\": 2.5\n"
              "    }\n"
              "  },\n"
              "  \"top\": 3\n"
              "}\n");
}

TEST(StatExport, WriteCsvIsSortedAndStable)
{
    const obs::StatSnapshot snap = {{"z", 1.0}, {"a", 2.0}};
    std::ostringstream os;
    obs::writeCsv(os, snap);
    EXPECT_EQ(os.str(), "stat,value\na,2\nz,1\n");
}

TEST(StatExport, RequestStatsViewOverDelta)
{
    obs::StatSnapshot d;
    const std::string cpu = "system.cpu1.o3.";
    const std::string mem = "system.core1.";
    d[cpu + "numCycles"] = 1000;
    d[cpu + "numInsts"] = 400;
    d[cpu + "numUops"] = 500;
    d[cpu + "numBranches"] = 60;
    d[cpu + "branchMispredicts"] = 6;
    d[cpu + "itlb.misses"] = 3;
    d[cpu + "dtlb.misses"] = 4;
    d[mem + "l1i.misses"] = 11;
    d[mem + "l1d.misses"] = 12;
    d[mem + "l2.misses"] = 13;
    for (unsigned c = 0; c < numStallCauses; ++c)
        d[cpu + "stall." + stallCauseName(c)] = 100;

    const RequestStats rs = RequestStats::fromStatDelta(d, cpu, mem);
    EXPECT_EQ(rs.cycles, 1000u);
    EXPECT_EQ(rs.insts, 400u);
    EXPECT_EQ(rs.uops, 500u);
    EXPECT_DOUBLE_EQ(rs.cpi, 2.5);
    EXPECT_EQ(rs.branches, 60u);
    EXPECT_EQ(rs.branchMispredicts, 6u);
    EXPECT_EQ(rs.itlbMisses, 3u);
    EXPECT_EQ(rs.dtlbMisses, 4u);
    EXPECT_EQ(rs.l1iMisses, 11u);
    EXPECT_EQ(rs.l1dMisses, 12u);
    EXPECT_EQ(rs.l2Misses, 13u);
    EXPECT_EQ(rs.stallTotal(), 1000u);
}

// ---------------------------------------------------------------------------
// RowSchema descriptors
// ---------------------------------------------------------------------------

TEST(RowSchema, DescribesEveryModeAndRejectsUnknown)
{
    const RowSchema *o3 = RowSchema::find("o3");
    ASSERT_NE(o3, nullptr);
    EXPECT_EQ(o3->version, 2u); // v1 predates the stall-cause fields
    // 10 counters + 10 stall causes, cold and warm, plus "ok".
    EXPECT_EQ(o3->fields.size(), 41u);

    const RowSchema *emu = RowSchema::find("emu");
    ASSERT_NE(emu, nullptr);
    EXPECT_EQ(emu->fields.size(), 3u);

    const RowSchema *ldcal = RowSchema::find("ldcal");
    ASSERT_NE(ldcal, nullptr);
    EXPECT_EQ(ldcal->fields.size(), 2u + loadWarmSamples);

    ASSERT_NE(RowSchema::find("load"), nullptr);
    EXPECT_EQ(RowSchema::find("bogus"), nullptr);
}

TEST(RowSchema, CompleteDemandsExactFieldSet)
{
    const RowSchema *emu = RowSchema::find("emu");
    ASSERT_NE(emu, nullptr);
    std::map<std::string, uint64_t> row = {
        {"coldNs", 5}, {"warmNs", 3}, {"ok", 1}, {"v", emu->version}};
    EXPECT_TRUE(emu->complete(row));
    row.erase("warmNs");
    EXPECT_FALSE(emu->complete(row));
    row["warmNs"] = 3;
    row["stray"] = 1;
    EXPECT_FALSE(emu->complete(row));
}

// ---------------------------------------------------------------------------
// Measurement correctness on the real simulator
// ---------------------------------------------------------------------------

namespace
{

ClusterConfig
bareConfig(IsaId isa)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = false;
    cfg.startMemcached = false;
    return cfg;
}

/** Replicates the legacy field-by-field read of the server core's
 *  absolute stat tree (what snapshotServerCore() did before the
 *  delta-based view). */
RequestStats
legacyRead(const obs::StatSnapshot &snap)
{
    auto get = [&](const std::string &key) {
        return uint64_t(obs::statValue(snap, key));
    };
    const std::string cpu = "system.cpu1.o3.";
    const std::string mem = "system.core1.";
    RequestStats rs;
    rs.cycles = get(cpu + "numCycles");
    rs.insts = get(cpu + "numInsts");
    rs.uops = get(cpu + "numUops");
    rs.cpi = rs.insts ? double(rs.cycles) / double(rs.insts) : 0.0;
    rs.l1iMisses = get(mem + "l1i.misses");
    rs.l1dMisses = get(mem + "l1d.misses");
    rs.l2Misses = get(mem + "l2.misses");
    rs.branches = get(cpu + "numBranches");
    rs.branchMispredicts = get(cpu + "branchMispredicts");
    rs.itlbMisses = get(cpu + "itlb.misses");
    rs.dtlbMisses = get(cpu + "dtlb.misses");
    return rs;
}

void
expectStallPartition(const RequestStats &rs)
{
    EXPECT_GT(rs.cycles, 0u);
    EXPECT_EQ(rs.stallTotal(), rs.cycles);
    // Committing work must account for some of the request.
    EXPECT_GT(rs.stalls[unsigned(StallCause::Retiring)], 0u);
}

} // namespace

class ObsMeasurement : public ::testing::TestWithParam<IsaId>
{
};

TEST_P(ObsMeasurement, DeltaViewMatchesLegacyReadAndStallsPartition)
{
    ASSERT_TRUE(envReady);
    const FunctionSpec spec = specFor("fibonacci-go");
    ExperimentRunner runner(bareConfig(GetParam()));
    const FunctionResult res =
        runner.runFunction(spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(res.ok);

    // The cluster stopped at the warm request's workEnd and its stats
    // were reset at that request's workBegin, so the ABSOLUTE tree
    // read the legacy way must equal the delta-derived warm view.
    const RequestStats legacy =
        legacyRead(obs::snapshot(runner.cluster().system().stats()));
    EXPECT_EQ(res.warm.cycles, legacy.cycles);
    EXPECT_EQ(res.warm.insts, legacy.insts);
    EXPECT_EQ(res.warm.uops, legacy.uops);
    EXPECT_DOUBLE_EQ(res.warm.cpi, legacy.cpi);
    EXPECT_EQ(res.warm.l1iMisses, legacy.l1iMisses);
    EXPECT_EQ(res.warm.l1dMisses, legacy.l1dMisses);
    EXPECT_EQ(res.warm.l2Misses, legacy.l2Misses);
    EXPECT_EQ(res.warm.branches, legacy.branches);
    EXPECT_EQ(res.warm.branchMispredicts, legacy.branchMispredicts);
    EXPECT_EQ(res.warm.itlbMisses, legacy.itlbMisses);
    EXPECT_EQ(res.warm.dtlbMisses, legacy.dtlbMisses);

    // The stall taxonomy partitions every measured request's cycles.
    expectStallPartition(res.cold);
    expectStallPartition(res.warm);
}

INSTANTIATE_TEST_SUITE_P(BothIsas, ObsMeasurement,
                         ::testing::Values(IsaId::Riscv, IsaId::Cx86),
                         [](const auto &info) {
                             return info.param == IsaId::Riscv ? "riscv"
                                                               : "x86";
                         });

// ---------------------------------------------------------------------------
// Golden determinism across worker counts
// ---------------------------------------------------------------------------

TEST(ObsDeterminism, TraceAndStatDumpsIdenticalAcrossJobs)
{
    ASSERT_TRUE(envReady);
    const std::string dumpFile = std::string(statDumpPath) +
                                 "/riscv64_cassandra00_fibonacci-go_o3" +
                                 ".warm.json";

    const std::string serial = sweepTrace(1, "test_obs_cache1.csv");
    const std::string serialDump = slurp(dumpFile);
    const std::string parallel = sweepTrace(4, "test_obs_cache4.csv");
    const std::string parallelDump = slurp(dumpFile);

    // The whole trace file and the per-request stat dump are
    // byte-identical whichever worker count produced them.
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    ASSERT_FALSE(serialDump.empty());
    EXPECT_EQ(serialDump, parallelDump);

    // Spot-check the span vocabulary: prepare phases, the semantic
    // cold/warm measurement spans, and the per-request spans from the
    // cluster's m5 plumbing.
    for (const char *needle :
         {"\"boot\"", "\"container-start\"", "\"settle\"", "\"cold\"",
          "\"warming\"", "\"warm\"", "\"request#1\"", "\"request#10\"",
          "riscv64/cassandra00/fibonacci-go/o3",
          "cx86-64/mongodb00/fibonacci-go/o3"}) {
        EXPECT_NE(serial.find(needle), std::string::npos)
            << "trace is missing " << needle;
    }
}

// ---------------------------------------------------------------------------
// Unified RunSpec dispatch
// ---------------------------------------------------------------------------

TEST(RunApi, RunnerDispatchesEveryMode)
{
    ASSERT_TRUE(envReady);
    const FunctionSpec spec = specFor("fibonacci-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);

    RunSpec rs;
    rs.spec = spec;
    rs.impl = &impl;
    rs.platform = bareConfig(IsaId::Riscv);

    ExperimentRunner runner(rs.platform);
    rs.mode = RunMode::Emu;
    const RunResult emu = runner.run(rs);
    ASSERT_TRUE(std::holds_alternative<EmuResult>(emu));
    EXPECT_TRUE(runResultOk(emu));
    EXPECT_GT(std::get<EmuResult>(emu).coldNs, 0u);

    rs.mode = RunMode::LoadCal;
    const RunResult cal = runner.run(rs);
    ASSERT_TRUE(std::holds_alternative<LoadCalibration>(cal));
    EXPECT_TRUE(runResultOk(cal));
}

TEST(RunApi, CacheRunMemoisesByModeKey)
{
    ASSERT_TRUE(envReady);
    TempCacheFile file("test_obs_runapi.csv");
    ResultCache cache(file.path);
    const FunctionSpec spec = specFor("fibonacci-go");

    RunSpec rs;
    rs.mode = RunMode::Emu;
    rs.spec = spec;
    rs.impl = &workloads::workloadImpl(spec.workload);
    rs.platform = bareConfig(IsaId::Riscv);

    const RunResult first = cache.run(rs);
    ASSERT_TRUE(std::holds_alternative<EmuResult>(first));
    ASSERT_TRUE(runResultOk(first));

    // A second identical request must come from the CSV row, and the
    // row key must carry the mode tag the schema table knows.
    const RunResult second = cache.run(rs);
    EXPECT_EQ(std::get<EmuResult>(first).coldNs,
              std::get<EmuResult>(second).coldNs);
    EXPECT_EQ(std::get<EmuResult>(first).warmNs,
              std::get<EmuResult>(second).warmNs);
    const std::string key = cache.rowKey(rs.platform, rs.spec, rs.mode);
    EXPECT_NE(key.find(",emu"), std::string::npos);
    std::map<std::string, uint64_t> row;
    ASSERT_TRUE(cache.lookupRow(key, row));
    EXPECT_EQ(row.at("v"), RowSchema::find("emu")->version);
}
