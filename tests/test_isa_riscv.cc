/**
 * @file
 * RV64IM encoder/decoder tests: assembler output decodes back to the
 * intended semantics, pseudo-instruction expansion is correct, and
 * the micro-op semantics match the architecture manual's corner
 * cases.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "isa/isa_info.hh"
#include "isa/riscv/assembler.hh"
#include "isa/riscv/decoder.hh"

using namespace svb;

namespace
{

/** Decode the i-th word of an assembled buffer. */
StaticInst
decodeWord(const std::vector<uint8_t> &code, size_t i)
{
    uint32_t w = 0;
    std::memcpy(&w, code.data() + i * 4, 4);
    return riscv::decode(w);
}

/** Assemble one thing and decode its first word. */
template <typename Fn>
StaticInst
roundtrip(Fn &&emit)
{
    riscv::Assembler as;
    emit(as);
    return decodeWord(as.finish(), 0);
}

} // namespace

TEST(RiscvIsa, RTypeRoundtrip)
{
    StaticInst inst = roundtrip(
        [](riscv::Assembler &as) { as.add(rv::a0, rv::a1, rv::a2); });
    ASSERT_TRUE(inst.valid);
    EXPECT_EQ(inst.mnemonic, "add");
    EXPECT_EQ(inst.numUops, 1);
    EXPECT_EQ(inst.uops[0].rd, rv::a0);
    EXPECT_EQ(inst.uops[0].rs1, rv::a1);
    EXPECT_EQ(inst.uops[0].rs2, rv::a2);
    EXPECT_EQ(inst.uops[0].op, UopOp::Add);
}

TEST(RiscvIsa, EveryAluMnemonicDecodes)
{
    riscv::Assembler as;
    as.add(1, 2, 3);
    as.sub(1, 2, 3);
    as.sll(1, 2, 3);
    as.slt(1, 2, 3);
    as.sltu(1, 2, 3);
    as.xor_(1, 2, 3);
    as.srl(1, 2, 3);
    as.sra(1, 2, 3);
    as.or_(1, 2, 3);
    as.and_(1, 2, 3);
    as.addw(1, 2, 3);
    as.subw(1, 2, 3);
    as.sllw(1, 2, 3);
    as.srlw(1, 2, 3);
    as.sraw(1, 2, 3);
    as.mul(1, 2, 3);
    as.mulh(1, 2, 3);
    as.mulhu(1, 2, 3);
    as.div(1, 2, 3);
    as.divu(1, 2, 3);
    as.rem(1, 2, 3);
    as.remu(1, 2, 3);
    as.mulw(1, 2, 3);
    as.divw(1, 2, 3);
    as.divuw(1, 2, 3);
    as.remw(1, 2, 3);
    as.remuw(1, 2, 3);
    const char *expected[] = {
        "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or",
        "and", "addw", "subw", "sllw", "srlw", "sraw", "mul", "mulh",
        "mulhu", "div", "divu", "rem", "remu", "mulw", "divw", "divuw",
        "remw", "remuw"};
    const auto &code = as.finish();
    for (size_t i = 0; i < std::size(expected); ++i) {
        StaticInst inst = decodeWord(code, i);
        ASSERT_TRUE(inst.valid) << expected[i];
        EXPECT_EQ(inst.mnemonic, expected[i]);
    }
}

TEST(RiscvIsa, LoadStoreVariants)
{
    riscv::Assembler as;
    as.lb(5, 6, -7);
    as.lhu(5, 6, 100);
    as.lwu(5, 6, 0);
    as.ld(5, 6, 2047);
    as.sb(5, 6, -2048);
    as.sd(5, 6, 8);
    const auto &code = as.finish();

    StaticInst lb = decodeWord(code, 0);
    EXPECT_EQ(lb.uops[0].memSize, 1);
    EXPECT_TRUE(lb.uops[0].memSigned);
    EXPECT_EQ(lb.uops[0].imm, -7);

    StaticInst lhu = decodeWord(code, 1);
    EXPECT_EQ(lhu.uops[0].memSize, 2);
    EXPECT_FALSE(lhu.uops[0].memSigned);
    EXPECT_EQ(lhu.uops[0].imm, 100);

    StaticInst ld = decodeWord(code, 3);
    EXPECT_EQ(ld.uops[0].imm, 2047);

    StaticInst sb = decodeWord(code, 4);
    EXPECT_TRUE(sb.uops[0].isStore());
    EXPECT_EQ(sb.uops[0].imm, -2048);
    EXPECT_EQ(sb.uops[0].rs2, 5);
    EXPECT_EQ(sb.uops[0].rs1, 6);
}

TEST(RiscvIsa, BranchOffsetsEncodeBothDirections)
{
    riscv::Assembler as;
    AsmLabel top = as.newLabel();
    as.bind(top);
    as.nop();
    AsmLabel fwd = as.newLabel();
    as.beq(1, 2, fwd);   // +8 forward
    as.bne(3, 4, top);   // -8 backward
    as.bind(fwd);
    as.nop();
    const auto &code = as.finish();

    StaticInst beq = decodeWord(code, 1);
    EXPECT_TRUE(beq.isCondCtrl);
    EXPECT_EQ(beq.directOffset, 8);
    StaticInst bne = decodeWord(code, 2);
    EXPECT_EQ(bne.directOffset, -8);
}

TEST(RiscvIsa, JalAndCallFlags)
{
    riscv::Assembler as;
    AsmLabel l = as.newLabel();
    as.call(l);        // jal ra -> call
    as.j(l);           // jal x0 -> plain jump
    as.jalr(0, rv::ra, 0); // ret
    as.bind(l);
    as.nop();
    const auto &code = as.finish();

    StaticInst call = decodeWord(code, 0);
    EXPECT_TRUE(call.isCall);
    EXPECT_TRUE(call.isDirectCtrl);
    StaticInst j = decodeWord(code, 1);
    EXPECT_FALSE(j.isCall);
    StaticInst ret = decodeWord(code, 2);
    EXPECT_TRUE(ret.isReturn);
}

TEST(RiscvIsa, FarCallUsesAuipcJalr)
{
    riscv::Assembler as;
    AsmLabel l = as.newLabel();
    as.callFar(l);
    for (int i = 0; i < 1000; ++i)
        as.nop();
    as.bind(l);
    as.nop();
    const auto &code = as.finish();
    StaticInst auipc = decodeWord(code, 0);
    EXPECT_EQ(auipc.mnemonic, "auipc");
    StaticInst jalr = decodeWord(code, 1);
    EXPECT_EQ(jalr.mnemonic, "jalr");
    EXPECT_TRUE(jalr.isCall);
    // Target arithmetic: (pc + auipc imm) + jalr imm == label offset.
    // The label sits after the 2-word call and 1000 nops: offset 4008.
    const int64_t hi = auipc.uops[0].imm;
    const int64_t lo = jalr.uops[0].imm;
    EXPECT_EQ(hi + lo, int64_t(4008));
}

class RiscvLiTest : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(RiscvLiTest, MaterialisesExactly)
{
    const int64_t value = GetParam();
    riscv::Assembler as;
    as.li(rv::a0, value);
    const auto &code = as.finish();

    // Interpret the emitted sequence with the micro-op semantics.
    uint64_t reg = 0;
    for (size_t i = 0; i * 4 < code.size(); ++i) {
        StaticInst inst = decodeWord(code, i);
        ASSERT_TRUE(inst.valid);
        const MicroOp &u = inst.uops[0];
        const uint64_t a = u.rs1 == rv::a0 ? reg : 0;
        reg = aluCompute(u, a, 0, 0);
    }
    EXPECT_EQ(reg, uint64_t(value)) << "li " << value;
}

INSTANTIATE_TEST_SUITE_P(
    Values, RiscvLiTest,
    ::testing::Values(0, 1, -1, 42, -42, 2047, 2048, -2048, -2049, 4096,
                      0x12345, -0x12345, 0x7fffffff, int64_t(-0x80000000LL),
                      0x100000000LL, 0x123456789abcdefLL,
                      -0x123456789abcdefLL, INT64_MAX, INT64_MIN,
                      0x70004000LL));

TEST(RiscvSemantics, DivisionCornerCases)
{
    MicroOp div;
    div.op = UopOp::Div;
    EXPECT_EQ(aluCompute(div, 7, 0, 0), ~uint64_t(0)); // div by zero
    EXPECT_EQ(aluCompute(div, uint64_t(INT64_MIN), uint64_t(-1), 0),
              uint64_t(INT64_MIN)); // overflow
    MicroOp rem;
    rem.op = UopOp::Rem;
    EXPECT_EQ(aluCompute(rem, 7, 0, 0), 7u);
    EXPECT_EQ(aluCompute(rem, uint64_t(INT64_MIN), uint64_t(-1), 0), 0u);
    MicroOp remu;
    remu.op = UopOp::Remu;
    EXPECT_EQ(aluCompute(remu, 10, 3, 0), 1u);
}

TEST(RiscvSemantics, WordOpsSignExtend)
{
    MicroOp addw;
    addw.op = UopOp::AddW;
    EXPECT_EQ(aluCompute(addw, 0x7fffffff, 1, 0),
              0xffffffff80000000ULL);
    MicroOp sraw;
    sraw.op = UopOp::SraW;
    EXPECT_EQ(aluCompute(sraw, 0x80000000, 4, 0),
              0xfffffffff8000000ULL);
}

TEST(RiscvIsa, SystemInstructions)
{
    riscv::Assembler as;
    as.ecall();
    as.ebreak();
    as.fence();
    const auto &code = as.finish();
    EXPECT_TRUE(decodeWord(code, 0).isSyscall);
    EXPECT_TRUE(decodeWord(code, 1).isHalt);
    EXPECT_EQ(decodeWord(code, 2).uops[0].op, UopOp::Nop);
}

TEST(RiscvIsa, InvalidEncodingRejected)
{
    EXPECT_FALSE(riscv::decode(0x00000000).valid);
    EXPECT_FALSE(riscv::decode(0xffffffff).valid);
}

TEST(RiscvIsa, WritesToX0AreDiscarded)
{
    StaticInst inst = roundtrip(
        [](riscv::Assembler &as) { as.add(0, 1, 2); });
    EXPECT_EQ(inst.uops[0].rd, invalidReg);
}
