/**
 * @file
 * Memory system unit tests: physical memory, tag-only caches (LRU,
 * writebacks, invalidation), the DRAM row-buffer model, and the
 * per-core hierarchies with write-invalidate coherence.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "mem/phys_memory.hh"

using namespace svb;

TEST(PhysMemory, ReadWriteAllWidths)
{
    PhysMemory mem(4096);
    mem.write(100, 0x1122334455667788ULL, 8);
    EXPECT_EQ(mem.read(100, 8), 0x1122334455667788ULL);
    EXPECT_EQ(mem.read(100, 4), 0x55667788u);
    EXPECT_EQ(mem.read(100, 2), 0x7788u);
    EXPECT_EQ(mem.read(100, 1), 0x88u);
    // Little endian: byte at +1.
    EXPECT_EQ(mem.read8(101), 0x77);
    mem.write16(200, 0xbeef);
    EXPECT_EQ(mem.read16(200), 0xbeef);
}

TEST(PhysMemory, BulkAndClear)
{
    PhysMemory mem(4096);
    const char src[] = "serverless";
    mem.writeBytes(10, src, sizeof(src));
    char dst[sizeof(src)];
    mem.readBytes(10, dst, sizeof(src));
    EXPECT_STREQ(dst, src);
    mem.clearRange(10, sizeof(src));
    EXPECT_EQ(mem.read8(10), 0);
}

TEST(PhysMemory, CheckpointRoundtrip)
{
    PhysMemory mem(4096);
    mem.write64(8, 0xdeadbeef);
    Checkpoint cp;
    mem.serializeState("m.", cp);
    PhysMemory other(4096);
    other.unserializeState("m.", cp);
    EXPECT_EQ(other.read64(8), 0xdeadbeefu);
}

namespace
{

/** A terminal MemLevel with fixed latency for cache testing. */
class FakeBackend : public MemLevel
{
  public:
    Cycles access(Addr, bool is_write, Cycles) override
    {
        ++(is_write ? writes : reads);
        return 100;
    }
    void warm(Addr, bool is_write) override
    {
        ++(is_write ? writes : reads);
    }
    uint64_t reads = 0;
    uint64_t writes = 0;
};

} // namespace

TEST(Cache, HitAfterFill)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 1024, 2, 64, 2}, backend, stats);

    EXPECT_GT(c.access(0x100, false, 0), 100u); // miss: fill from below
    EXPECT_EQ(c.access(0x100, false, 1), 2u);   // hit
    EXPECT_EQ(c.access(0x13f, false, 2), 2u);   // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    StatGroup stats("t");
    FakeBackend backend;
    // 2 ways, 8 sets: lines 0, 512, 1024 map to set 0.
    Cache c(CacheParams{"c", 1024, 2, 64, 1}, backend, stats);
    c.access(0, false, 0);
    c.access(512, false, 1);
    c.access(0, false, 2);     // touch 0: 512 becomes LRU
    c.access(1024, false, 3);  // evicts 512
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(512));
    EXPECT_TRUE(c.contains(1024));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 128, 1, 64, 1}, backend, stats);
    c.access(0, true, 0);          // dirty line in set 0
    const uint64_t writes_before = backend.writes;
    c.access(128, false, 1);       // evicts the dirty line
    EXPECT_EQ(backend.writes, writes_before + 1);
}

TEST(Cache, CleanEvictionDoesNotWriteBack)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 128, 1, 64, 1}, backend, stats);
    c.access(0, false, 0);
    c.access(128, false, 1);
    EXPECT_EQ(backend.writes, 0u);
}

TEST(Cache, InvalidateDropsLine)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 1024, 2, 64, 1}, backend, stats);
    c.access(0x40, true, 0);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40)); // already gone
    // Invalidated dirty lines are dropped, not written back (the
    // functional data lives in PhysMemory).
    EXPECT_EQ(backend.writes, 0u);
}

TEST(Cache, WarmUpdatesTagsWithoutTiming)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 1024, 2, 64, 3}, backend, stats);
    c.warm(0x80, false);
    EXPECT_TRUE(c.contains(0x80));
    EXPECT_EQ(c.access(0x80, false, 0), 3u); // timed hit afterwards
}

TEST(Cache, FlushAllEmptiesCache)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 1024, 2, 64, 1}, backend, stats);
    c.access(0, false, 0);
    c.flushAll();
    EXPECT_FALSE(c.contains(0));
}

TEST(Dram, RowBufferHitsAreCheaper)
{
    StatGroup stats("t");
    DramParams p;
    DramCtrl dram(p, stats);
    const Cycles first = dram.access(0, false, 0);
    const Cycles second = dram.access(64, false, 10'000); // same row
    EXPECT_GT(first, second);
}

TEST(Dram, ChannelContentionQueues)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    const Cycles back_to_back_first = dram.access(0, false, 0);
    // Immediately-following access must wait for the channel.
    const Cycles back_to_back_second = dram.access(1 << 20, false, 1);
    EXPECT_GT(back_to_back_second, back_to_back_first / 2);
}

TEST(Hierarchy, SnoopInvalidatesOtherCore)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    CoherenceBus bus;
    CoreMemSystem core0(0, CoreMemParams{}, dram, bus, stats);
    CoreMemSystem core1(1, CoreMemParams{}, dram, bus, stats);

    core0.dataAccess(0x1000, 8, false, 0);
    core1.dataAccess(0x1000, 8, false, 0);
    EXPECT_TRUE(core0.l1d().contains(0x1000));
    EXPECT_TRUE(core1.l1d().contains(0x1000));

    // A write by core 1 invalidates core 0's copy.
    core1.dataAccess(0x1000, 8, true, 1);
    EXPECT_FALSE(core0.l1d().contains(0x1000));
    EXPECT_TRUE(core1.l1d().contains(0x1000));
}

TEST(Hierarchy, StraddlingAccessTouchesBothLines)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    CoherenceBus bus;
    CoreMemSystem core(0, CoreMemParams{}, dram, bus, stats);

    core.dataAccess(0x10fc, 8, false, 0); // crosses 0x1100
    EXPECT_TRUE(core.l1d().contains(0x10c0));
    EXPECT_TRUE(core.l1d().contains(0x1100));
}

TEST(Hierarchy, FetchGoesThroughL1I)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    CoherenceBus bus;
    CoreMemSystem core(0, CoreMemParams{}, dram, bus, stats);

    core.fetchAccess(0x2000, 4, 0);
    EXPECT_TRUE(core.l1i().contains(0x2000));
    EXPECT_FALSE(core.l1d().contains(0x2000));
    EXPECT_TRUE(core.l2().contains(0x2000)); // filled on the way
}

TEST(Hierarchy, MissLatencyDecomposes)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    CoherenceBus bus;
    CoreMemSystem core(0, CoreMemParams{}, dram, bus, stats);

    const Cycles cold = core.dataAccess(0x3000, 8, false, 0);
    const Cycles l2_hit = [&] {
        core.l1d().invalidate(0x3000);
        return core.dataAccess(0x3000, 8, false, 100);
    }();
    const Cycles l1_hit = core.dataAccess(0x3000, 8, false, 200);
    EXPECT_GT(cold, l2_hit);
    EXPECT_GT(l2_hit, l1_hit);
    EXPECT_EQ(l1_hit, CoreMemParams{}.l1d.hitLatency);
}
