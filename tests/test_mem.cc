/**
 * @file
 * Memory system unit tests: physical memory (including the
 * page-granular checkpoint format, working-set touch recording and
 * lazy CoW restores), tag-only caches (LRU, writebacks,
 * invalidation), the DRAM row-buffer model, and the per-core
 * hierarchies with write-invalidate coherence.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/hierarchy.hh"
#include "mem/phys_memory.hh"

using namespace svb;

TEST(PhysMemory, ReadWriteAllWidths)
{
    PhysMemory mem(4096);
    mem.write(100, 0x1122334455667788ULL, 8);
    EXPECT_EQ(mem.read(100, 8), 0x1122334455667788ULL);
    EXPECT_EQ(mem.read(100, 4), 0x55667788u);
    EXPECT_EQ(mem.read(100, 2), 0x7788u);
    EXPECT_EQ(mem.read(100, 1), 0x88u);
    // Little endian: byte at +1.
    EXPECT_EQ(mem.read8(101), 0x77);
    mem.write16(200, 0xbeef);
    EXPECT_EQ(mem.read16(200), 0xbeef);
}

TEST(PhysMemory, BulkAndClear)
{
    PhysMemory mem(4096);
    const char src[] = "serverless";
    mem.writeBytes(10, src, sizeof(src));
    char dst[sizeof(src)];
    mem.readBytes(10, dst, sizeof(src));
    EXPECT_STREQ(dst, src);
    mem.clearRange(10, sizeof(src));
    EXPECT_EQ(mem.read8(10), 0);
}

TEST(PhysMemory, CheckpointRoundtrip)
{
    PhysMemory mem(4096);
    mem.write64(8, 0xdeadbeef);
    Checkpoint cp;
    mem.serializeState("m.", cp);
    PhysMemory other(4096);
    other.unserializeState("m.", cp);
    EXPECT_EQ(other.read64(8), 0xdeadbeefu);
}

TEST(PhysMemory, PageTableFormatDedupsIdenticalPages)
{
    PhysMemory mem(8 * snapshotPageBytes);
    // Three identical non-zero pages plus one distinct one; the rest
    // stay zero and must not be stored at all.
    for (uint64_t page : {0ull, 3ull, 6ull}) {
        for (size_t b = 0; b < snapshotPageBytes; b += 8)
            mem.write64(page * snapshotPageBytes + b, 0xa5a5a5a5ull);
    }
    mem.write64(5 * snapshotPageBytes + 16, 0x123456789ull);

    Checkpoint cp;
    mem.serializeState("m.", cp);
    EXPECT_EQ(cp.getScalar("m.format"), 2u);
    EXPECT_EQ(cp.getScalar("m.pages"), 4u);       // 4 non-zero pages
    EXPECT_EQ(cp.getScalar("m.uniquePages"), 2u); // 2 distinct contents
    EXPECT_EQ(cp.getBlob("m.pagedata").size(), 2 * snapshotPageBytes);

    PhysMemory other(8 * snapshotPageBytes);
    other.unserializeState("m.", cp);
    for (Addr a = 0; a < mem.size(); a += 8)
        ASSERT_EQ(other.read64(a), mem.read64(a)) << "at " << a;
}

TEST(PhysMemory, ZeroPagesAreNotStored)
{
    PhysMemory mem(16 * snapshotPageBytes);
    Checkpoint cp;
    mem.serializeState("m.", cp);
    EXPECT_EQ(cp.getScalar("m.pages"), 0u);
    EXPECT_EQ(cp.getScalar("m.uniquePages"), 0u);
    EXPECT_TRUE(cp.getBlob("m.pagedata").empty());
}

TEST(PhysMemory, TouchRecordingCapturesAccessedPages)
{
    PhysMemory mem(8 * snapshotPageBytes);
    mem.write64(0, 1); // before recording: not captured
    mem.startTouchRecording();
    EXPECT_TRUE(mem.touchRecording());
    mem.write64(2 * snapshotPageBytes + 8, 2);
    (void)mem.read64(5 * snapshotPageBytes);
    // A straddling access touches both pages.
    uint8_t buf[16] = {};
    mem.readBytes(4 * snapshotPageBytes - 8, buf, sizeof(buf));
    const std::vector<uint64_t> ws = mem.stopTouchRecording();
    EXPECT_FALSE(mem.touchRecording());
    EXPECT_EQ(ws, (std::vector<uint64_t>{2, 3, 4, 5}));
    // Disarmed: later accesses record nothing.
    mem.write64(7 * snapshotPageBytes, 3);
    mem.startTouchRecording();
    EXPECT_TRUE(mem.stopTouchRecording().empty());
}

TEST(PhysMemory, LazyRestoreMatchesFullRestoreByteForByte)
{
    PhysMemory source(8 * snapshotPageBytes);
    for (uint64_t page : {1ull, 2ull, 6ull}) {
        for (size_t b = 0; b < snapshotPageBytes; b += 8)
            source.write64(page * snapshotPageBytes + b,
                           0x1000 + page * 8 + b);
    }
    Checkpoint cp;
    source.serializeState("m.", cp);

    PhysMemory full(8 * snapshotPageBytes);
    full.unserializeState("m.", cp);
    EXPECT_EQ(full.fullRestores(), 1u);

    PhysMemory lazy(8 * snapshotPageBytes);
    lazy.write64(0, 0xdead); // pre-restore dirt must vanish
    ASSERT_TRUE(PhysMemory::hasPageTable("m.", cp));
    lazy.restoreLazy(PhysMemory::buildImage("m.", cp));
    EXPECT_EQ(lazy.lazyRestores(), 1u);
    EXPECT_EQ(lazy.imagePages(), 3u);
    // No working set recorded: nothing prefetched, all pages pending.
    EXPECT_EQ(lazy.prefetchedPages(), 0u);
    EXPECT_EQ(lazy.pendingLazyPages(), 3u);

    for (Addr a = 0; a < full.size(); a += 8)
        ASSERT_EQ(lazy.read64(a), full.read64(a)) << "at " << a;
    EXPECT_EQ(lazy.pendingLazyPages(), 0u);
    EXPECT_EQ(lazy.lazyFaults(), 3u);
    EXPECT_EQ(lazy.residentImagePages(), 3u);
}

TEST(PhysMemory, WorkingSetPrefetchesEagerly)
{
    PhysMemory source(8 * snapshotPageBytes);
    for (uint64_t page : {1ull, 2ull, 6ull})
        source.write64(page * snapshotPageBytes, 0xbeef00 + page);
    source.startTouchRecording();
    (void)source.read64(2 * snapshotPageBytes);
    Checkpoint cp;
    source.serializeState("m.", cp);
    // Attach the recorded working set the way the store does.
    BlobWriter w;
    for (uint64_t p : source.stopTouchRecording())
        w.putU64(p);
    cp.setBlob("m.ws", w.take());

    PhysMemory lazy(8 * snapshotPageBytes);
    lazy.restoreLazy(PhysMemory::buildImage("m.", cp));
    EXPECT_EQ(lazy.prefetchedPages(), 1u);
    EXPECT_EQ(lazy.pendingLazyPages(), 2u);
    EXPECT_EQ(lazy.residentImagePages(), 1u);
    // The prefetched page reads without a fault.
    EXPECT_EQ(lazy.read64(2 * snapshotPageBytes), 0xbeef02u);
    EXPECT_EQ(lazy.lazyFaults(), 0u);
}

TEST(PhysMemory, CowSharingIsolatesInstances)
{
    PhysMemory source(4 * snapshotPageBytes);
    source.write64(snapshotPageBytes, 0x1111);
    Checkpoint cp;
    source.serializeState("m.", cp);
    const std::shared_ptr<const PageImage> image =
        PhysMemory::buildImage("m.", cp);

    PhysMemory a(4 * snapshotPageBytes);
    PhysMemory b(4 * snapshotPageBytes);
    a.restoreLazy(image);
    b.restoreLazy(image);
    // A guest write in one instance never reaches its sibling.
    a.write64(snapshotPageBytes, 0x2222);
    EXPECT_EQ(a.read64(snapshotPageBytes), 0x2222u);
    EXPECT_EQ(b.read64(snapshotPageBytes), 0x1111u);
    // And the shared image itself is untouched: a third restore still
    // sees the snapshot value.
    PhysMemory c(4 * snapshotPageBytes);
    c.restoreLazy(image);
    EXPECT_EQ(c.read64(snapshotPageBytes), 0x1111u);
}

TEST(PhysMemory, SerializeOfLazyInstanceMaterializesFirst)
{
    PhysMemory source(4 * snapshotPageBytes);
    source.write64(2 * snapshotPageBytes, 0x77);
    Checkpoint cp;
    source.serializeState("m.", cp);

    PhysMemory lazy(4 * snapshotPageBytes);
    lazy.restoreLazy(PhysMemory::buildImage("m.", cp));
    // Re-serialising an only-partially-materialised instance must
    // produce the complete image, not just the resident pages.
    Checkpoint cp2;
    lazy.serializeState("m.", cp2);
    PhysMemory back(4 * snapshotPageBytes);
    back.unserializeState("m.", cp2);
    EXPECT_EQ(back.read64(2 * snapshotPageBytes), 0x77u);
}

TEST(PhysMemory, ValidateCheckpointRejectsHostileImages)
{
    PhysMemory mem(4 * snapshotPageBytes);
    mem.write64(0, 1);
    mem.write64(3 * snapshotPageBytes, 2);
    Checkpoint good;
    mem.serializeState("m.", good);
    std::string err;
    EXPECT_TRUE(PhysMemory::validateCheckpoint("m.", good, &err)) << err;

    // Page count beyond the memory.
    {
        Checkpoint cp = good;
        cp.setScalar("m.pages", 1u << 20);
        EXPECT_FALSE(PhysMemory::validateCheckpoint("m.", cp, &err));
    }
    // Unsupported page size (would scale every offset wrong).
    {
        Checkpoint cp = good;
        cp.setScalar("m.pageBytes", 1u << 30);
        EXPECT_FALSE(PhysMemory::validateCheckpoint("m.", cp, &err));
    }
    // Truncated page-table blob.
    {
        Checkpoint cp = good;
        std::vector<uint8_t> table = cp.getBlob("m.table");
        table.resize(table.size() - 8);
        cp.setBlob("m.table", std::move(table));
        EXPECT_FALSE(PhysMemory::validateCheckpoint("m.", cp, &err));
    }
    // Page index out of bounds.
    {
        Checkpoint cp = good;
        std::vector<uint8_t> table = cp.getBlob("m.table");
        table[0] = 0xff; // first mapping's page index -> huge
        table[3] = 0xff;
        cp.setBlob("m.table", std::move(table));
        EXPECT_FALSE(PhysMemory::validateCheckpoint("m.", cp, &err));
    }
    // Unique-page id out of bounds.
    {
        Checkpoint cp = good;
        std::vector<uint8_t> table = cp.getBlob("m.table");
        table[8] = 0xff;
        cp.setBlob("m.table", std::move(table));
        EXPECT_FALSE(PhysMemory::validateCheckpoint("m.", cp, &err));
    }
    // Unique-page pool length mismatch.
    {
        Checkpoint cp = good;
        std::vector<uint8_t> pd = cp.getBlob("m.pagedata");
        pd.resize(pd.size() - 1);
        cp.setBlob("m.pagedata", std::move(pd));
        EXPECT_FALSE(PhysMemory::validateCheckpoint("m.", cp, &err));
    }
    // Working set with an out-of-bounds page.
    {
        Checkpoint cp = good;
        BlobWriter w;
        w.putU64(1u << 20);
        cp.setBlob("m.ws", w.take());
        EXPECT_FALSE(PhysMemory::validateCheckpoint("m.", cp, &err));
    }
    // Hostile legacy v1: payload length larger than the blob.
    {
        Checkpoint cp;
        cp.setScalar("m.size", 4 * snapshotPageBytes);
        cp.setScalar("m.pageBytes", snapshotPageBytes);
        cp.setScalar("m.pages", 2);
        BlobWriter w;
        w.putU64(0); // one record, then truncation
        cp.setBlob("m.data", w.take());
        EXPECT_FALSE(PhysMemory::validateCheckpoint("m.", cp, &err));
    }
    // The original is still fine (doctored copies never leaked back).
    EXPECT_TRUE(PhysMemory::validateCheckpoint("m.", good, &err)) << err;
}

TEST(PageStore, InternDedupsAndFreesWithLastHolder)
{
    PageStore &store = PageStore::global();
    store.resetForTest();

    std::vector<uint8_t> page(snapshotPageBytes, 0x5a);
    auto first = store.intern(page.data(), page.size());
    auto second = store.intern(page.data(), page.size());
    EXPECT_EQ(first.get(), second.get()); // same shared page
    EXPECT_EQ(store.internHits(), 1u);
    EXPECT_EQ(store.internMisses(), 1u);
    EXPECT_EQ(store.liveUniquePages(), 1u);

    page[0] ^= 0xff;
    auto third = store.intern(page.data(), page.size());
    EXPECT_NE(first.get(), third.get());
    EXPECT_EQ(store.liveUniquePages(), 2u);

    // Dropping every holder frees the page: the next intern of the
    // same bytes is a miss again.
    first.reset();
    second.reset();
    third.reset();
    EXPECT_EQ(store.liveUniquePages(), 0u);
    std::vector<uint8_t> again(snapshotPageBytes, 0x5a);
    store.intern(again.data(), again.size());
    EXPECT_EQ(store.internMisses(), 3u);
}

TEST(PageStore, ShortTailPageHashesLikePaddedPage)
{
    std::vector<uint8_t> full(snapshotPageBytes, 0);
    full[0] = 0xab;
    EXPECT_EQ(hashSnapshotPage(full.data(), 1),
              hashSnapshotPage(full.data(), full.size()));
    PageStore &store = PageStore::global();
    store.resetForTest();
    auto tail = store.intern(full.data(), 1);
    auto padded = store.intern(full.data(), full.size());
    EXPECT_EQ(tail.get(), padded.get());
}

namespace
{

/** A terminal MemLevel with fixed latency for cache testing. */
class FakeBackend : public MemLevel
{
  public:
    Cycles access(Addr, bool is_write, Cycles) override
    {
        ++(is_write ? writes : reads);
        return 100;
    }
    void warm(Addr, bool is_write) override
    {
        ++(is_write ? writes : reads);
    }
    uint64_t reads = 0;
    uint64_t writes = 0;
};

} // namespace

TEST(Cache, HitAfterFill)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 1024, 2, 64, 2}, backend, stats);

    EXPECT_GT(c.access(0x100, false, 0), 100u); // miss: fill from below
    EXPECT_EQ(c.access(0x100, false, 1), 2u);   // hit
    EXPECT_EQ(c.access(0x13f, false, 2), 2u);   // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    StatGroup stats("t");
    FakeBackend backend;
    // 2 ways, 8 sets: lines 0, 512, 1024 map to set 0.
    Cache c(CacheParams{"c", 1024, 2, 64, 1}, backend, stats);
    c.access(0, false, 0);
    c.access(512, false, 1);
    c.access(0, false, 2);     // touch 0: 512 becomes LRU
    c.access(1024, false, 3);  // evicts 512
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(512));
    EXPECT_TRUE(c.contains(1024));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 128, 1, 64, 1}, backend, stats);
    c.access(0, true, 0);          // dirty line in set 0
    const uint64_t writes_before = backend.writes;
    c.access(128, false, 1);       // evicts the dirty line
    EXPECT_EQ(backend.writes, writes_before + 1);
}

TEST(Cache, CleanEvictionDoesNotWriteBack)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 128, 1, 64, 1}, backend, stats);
    c.access(0, false, 0);
    c.access(128, false, 1);
    EXPECT_EQ(backend.writes, 0u);
}

TEST(Cache, InvalidateDropsLine)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 1024, 2, 64, 1}, backend, stats);
    c.access(0x40, true, 0);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40)); // already gone
    // Invalidated dirty lines are dropped, not written back (the
    // functional data lives in PhysMemory).
    EXPECT_EQ(backend.writes, 0u);
}

TEST(Cache, WarmUpdatesTagsWithoutTiming)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 1024, 2, 64, 3}, backend, stats);
    c.warm(0x80, false);
    EXPECT_TRUE(c.contains(0x80));
    EXPECT_EQ(c.access(0x80, false, 0), 3u); // timed hit afterwards
}

TEST(Cache, FlushAllEmptiesCache)
{
    StatGroup stats("t");
    FakeBackend backend;
    Cache c(CacheParams{"c", 1024, 2, 64, 1}, backend, stats);
    c.access(0, false, 0);
    c.flushAll();
    EXPECT_FALSE(c.contains(0));
}

TEST(Dram, RowBufferHitsAreCheaper)
{
    StatGroup stats("t");
    DramParams p;
    DramCtrl dram(p, stats);
    const Cycles first = dram.access(0, false, 0);
    const Cycles second = dram.access(64, false, 10'000); // same row
    EXPECT_GT(first, second);
}

TEST(Dram, ChannelContentionQueues)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    const Cycles back_to_back_first = dram.access(0, false, 0);
    // Immediately-following access must wait for the channel.
    const Cycles back_to_back_second = dram.access(1 << 20, false, 1);
    EXPECT_GT(back_to_back_second, back_to_back_first / 2);
}

TEST(Hierarchy, SnoopInvalidatesOtherCore)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    CoherenceBus bus;
    CoreMemSystem core0(0, CoreMemParams{}, dram, bus, stats);
    CoreMemSystem core1(1, CoreMemParams{}, dram, bus, stats);

    core0.dataAccess(0x1000, 8, false, 0);
    core1.dataAccess(0x1000, 8, false, 0);
    EXPECT_TRUE(core0.l1d().contains(0x1000));
    EXPECT_TRUE(core1.l1d().contains(0x1000));

    // A write by core 1 invalidates core 0's copy.
    core1.dataAccess(0x1000, 8, true, 1);
    EXPECT_FALSE(core0.l1d().contains(0x1000));
    EXPECT_TRUE(core1.l1d().contains(0x1000));
}

TEST(Hierarchy, StraddlingAccessTouchesBothLines)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    CoherenceBus bus;
    CoreMemSystem core(0, CoreMemParams{}, dram, bus, stats);

    core.dataAccess(0x10fc, 8, false, 0); // crosses 0x1100
    EXPECT_TRUE(core.l1d().contains(0x10c0));
    EXPECT_TRUE(core.l1d().contains(0x1100));
}

TEST(Hierarchy, FetchGoesThroughL1I)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    CoherenceBus bus;
    CoreMemSystem core(0, CoreMemParams{}, dram, bus, stats);

    core.fetchAccess(0x2000, 4, 0);
    EXPECT_TRUE(core.l1i().contains(0x2000));
    EXPECT_FALSE(core.l1d().contains(0x2000));
    EXPECT_TRUE(core.l2().contains(0x2000)); // filled on the way
}

TEST(Hierarchy, MissLatencyDecomposes)
{
    StatGroup stats("t");
    DramCtrl dram(DramParams{}, stats);
    CoherenceBus bus;
    CoreMemSystem core(0, CoreMemParams{}, dram, bus, stats);

    const Cycles cold = core.dataAccess(0x3000, 8, false, 0);
    const Cycles l2_hit = [&] {
        core.l1d().invalidate(0x3000);
        return core.dataAccess(0x3000, 8, false, 100);
    }();
    const Cycles l1_hit = core.dataAccess(0x3000, 8, false, 200);
    EXPECT_GT(cold, l2_hit);
    EXPECT_GT(l2_hit, l1_hit);
    EXPECT_EQ(l1_hit, CoreMemParams{}.l1d.hitLatency);
}
