/**
 * @file
 * Cluster/methodology tests: checkpoint-restore determinism (the Fig
 * 4.1 protocol's foundation), run-to-run reproducibility, CPU-model
 * switching mid-run, and the result cache.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/result_cache.hh"
#include "workloads/workloads.hh"

using namespace svb;

namespace
{

FunctionSpec
specNamed(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    return {};
}

ClusterConfig
cfgFor(const FunctionSpec &spec, IsaId isa = IsaId::Riscv)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = spec.usesDb;
    cfg.startMemcached = spec.usesMemcached;
    return cfg;
}

bool
statsEqual(const RequestStats &a, const RequestStats &b)
{
    return a.cycles == b.cycles && a.insts == b.insts &&
           a.l1iMisses == b.l1iMisses && a.l1dMisses == b.l1dMisses &&
           a.l2Misses == b.l2Misses &&
           a.branchMispredicts == b.branchMispredicts;
}

} // namespace

TEST(Cluster, ExperimentsAreBitReproducible)
{
    const FunctionSpec spec = specNamed("auth-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);

    // Two runs through the SAME runner (checkpoint restore between
    // them) and a run on a FRESH runner must agree exactly.
    ExperimentRunner runner(cfgFor(spec));
    const FunctionResult first = runner.runFunction(spec, impl);
    const FunctionResult second = runner.runFunction(spec, impl);
    ASSERT_TRUE(first.ok);
    ASSERT_TRUE(second.ok);
    EXPECT_TRUE(statsEqual(first.cold, second.cold));
    EXPECT_TRUE(statsEqual(first.warm, second.warm));

    ExperimentRunner fresh(cfgFor(spec));
    const FunctionResult third = fresh.runFunction(spec, impl);
    ASSERT_TRUE(third.ok);
    EXPECT_TRUE(statsEqual(first.cold, third.cold));
    EXPECT_TRUE(statsEqual(first.warm, third.warm));
}

TEST(Cluster, CheckpointSurvivesFileRoundtrip)
{
    const FunctionSpec spec = specNamed("rate"); // db + memcached
    ClusterConfig cfg = cfgFor(spec);

    ServerlessCluster cluster(cfg);
    cluster.boot();
    const Checkpoint cp = cluster.system().saveCheckpoint();
    const std::string path = "/tmp/svbench_cluster_ckpt.bin";
    cp.saveToFile(path);
    const Checkpoint loaded = Checkpoint::loadFromFile(path);
    std::remove(path.c_str());

    // Restore into a freshly built, identically configured system.
    ServerlessCluster other(cfg);
    other.system().restoreCheckpoint(loaded);
    // The restored kernel knows the booted store containers.
    EXPECT_GE(other.system().kernel().findProcess("cassandra"), 0);
    EXPECT_GE(other.system().kernel().findProcess("memcached"), 0);
}

TEST(Cluster, SwitchingCpuModelsMidRunPreservesState)
{
    // Run half the experiment in O3, switch to Atomic and back; the
    // request must still complete correctly.
    const FunctionSpec spec = specNamed("fibonacci-go");
    ClusterConfig cfg = cfgFor(spec);
    ServerlessCluster cluster(cfg);
    cluster.boot();
    cluster.resetToBaseline();
    auto dep =
        cluster.deploy(spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(cluster.runUntilReady(1));
    cluster.openClientGate(dep);

    System &sys = cluster.system();
    sys.switchCpu(0, CpuModel::O3);
    sys.switchCpu(1, CpuModel::O3);
    // Interrupt the O3 run mid-request several times.
    for (int i = 0; i < 5; ++i) {
        sys.run(20'000);
        sys.switchCpu(1, CpuModel::Atomic);
        sys.run(5'000);
        sys.switchCpu(1, CpuModel::O3);
        if (cluster.workEnds() >= 1)
            break;
    }
    EXPECT_TRUE(cluster.runUntilWorkEnds(1));
}

TEST(ResultCache, MemoisesAcrossInstances)
{
    const std::string path = "/tmp/svbench_test_cache.csv";
    std::remove(path.c_str());
    const FunctionSpec spec = specNamed("fibonacci-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
    const ClusterConfig cfg = cfgFor(spec);

    FunctionResult first;
    {
        ResultCache cache(path);
        first = cache.detailed(cfg, spec, impl);
        ASSERT_TRUE(first.ok);
    }
    {
        // A new cache instance must serve from disk (and therefore be
        // instant — but we only check value equality here).
        ResultCache cache(path);
        const FunctionResult again = cache.detailed(cfg, spec, impl);
        EXPECT_TRUE(statsEqual(first.cold, again.cold));
        EXPECT_TRUE(statsEqual(first.warm, again.warm));
    }
    std::remove(path.c_str());
}

TEST(ResultCache, DistinguishesConfigurations)
{
    const std::string path = "/tmp/svbench_test_cache2.csv";
    std::remove(path.c_str());
    ResultCache cache(path);
    const FunctionSpec spec = specNamed("fibonacci-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);

    const FunctionResult rv =
        cache.detailed(cfgFor(spec, IsaId::Riscv), spec, impl);
    const FunctionResult cx =
        cache.detailed(cfgFor(spec, IsaId::Cx86), spec, impl);
    EXPECT_NE(rv.cold.cycles, cx.cold.cycles);
    std::remove(path.c_str());
}

TEST(Cluster, EmulationAndDetailedAgreeFunctionally)
{
    // Both modes drive the same guest software; the emulation-mode
    // latency must be positive and cold > warm in both.
    const FunctionSpec spec = specNamed("fibonacci-nodejs");
    ExperimentRunner runner(cfgFor(spec));
    const EmuResult emu = runner.runFunctionEmu(
        spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(emu.ok);
    EXPECT_GT(emu.coldNs, emu.warmNs);
}

TEST(Cluster, LukewarmLandsBetweenWarmAndCold)
{
    const FunctionSpec spec = specNamed("fibonacci-go");
    const FunctionSpec other = specNamed("aes-python");
    ExperimentRunner runner(cfgFor(spec));
    const FunctionResult solo =
        runner.runFunction(spec, workloads::workloadImpl(spec.workload));
    ASSERT_TRUE(solo.ok);
    const LukewarmResult lw = runner.runLukewarm(
        spec, workloads::workloadImpl(spec.workload), other,
        workloads::workloadImpl(other.workload));
    ASSERT_TRUE(lw.ok);
    // Interleaving must hurt the warm request...
    EXPECT_GT(lw.lukewarm.cycles, lw.warm.cycles);
    EXPECT_GT(lw.lukewarm.l1iMisses, lw.warm.l1iMisses);
}
