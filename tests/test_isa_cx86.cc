/**
 * @file
 * CX86 encoder/decoder tests: lengths, micro-op cracking, condition
 * flags, and the short-displacement memory forms.
 */

#include <gtest/gtest.h>

#include "isa/cx86/assembler.hh"
#include "isa/cx86/decoder.hh"
#include "isa/isa_info.hh"

using namespace svb;

namespace
{

StaticInst
first(const std::vector<uint8_t> &code)
{
    return cx86::decode(code.data(), code.size());
}

template <typename Fn>
StaticInst
roundtrip(Fn &&emit)
{
    cx86::Assembler as;
    emit(as);
    return first(as.finish());
}

} // namespace

TEST(Cx86Isa, MovRegRegIsTwoBytes)
{
    StaticInst inst =
        roundtrip([](cx86::Assembler &as) { as.mov(cx::r1, cx::r2); });
    ASSERT_TRUE(inst.valid);
    EXPECT_EQ(inst.length, 2);
    EXPECT_EQ(inst.numUops, 1);
    EXPECT_EQ(inst.uops[0].rd, cx::r1);
    EXPECT_EQ(inst.uops[0].rs1, cx::r2);
}

TEST(Cx86Isa, MovImmChoosesWidth)
{
    StaticInst small =
        roundtrip([](cx86::Assembler &as) { as.movImm(cx::r3, 1234); });
    EXPECT_EQ(small.length, 6);
    EXPECT_EQ(small.uops[0].imm, 1234);

    StaticInst neg =
        roundtrip([](cx86::Assembler &as) { as.movImm(cx::r3, -5); });
    EXPECT_EQ(neg.length, 6);
    EXPECT_EQ(neg.uops[0].imm, -5);

    StaticInst big = roundtrip([](cx86::Assembler &as) {
        as.movImm(cx::r3, 0x123456789abLL);
    });
    EXPECT_EQ(big.length, 10);
    EXPECT_EQ(big.uops[0].imm, 0x123456789abLL);
}

TEST(Cx86Isa, TwoOperandAluReadsDest)
{
    StaticInst inst =
        roundtrip([](cx86::Assembler &as) { as.add(cx::rbp, cx::r6); });
    EXPECT_EQ(inst.uops[0].rd, cx::rbp);
    EXPECT_EQ(inst.uops[0].rs1, cx::rbp); // destructive two-operand form
    EXPECT_EQ(inst.uops[0].rs2, cx::r6);
}

TEST(Cx86Isa, LoadsPickDisp8Form)
{
    StaticInst short_form = roundtrip([](cx86::Assembler &as) {
        as.load(cx::r1, cx::rsp, 16, 8, false);
    });
    EXPECT_EQ(short_form.length, 3);
    EXPECT_EQ(short_form.uops[0].imm, 16);
    EXPECT_EQ(short_form.uops[0].memSize, 8);

    StaticInst long_form = roundtrip([](cx86::Assembler &as) {
        as.load(cx::r1, cx::rsp, 4096, 4, true);
    });
    EXPECT_EQ(long_form.length, 6);
    EXPECT_EQ(long_form.uops[0].imm, 4096);
    EXPECT_TRUE(long_form.uops[0].memSigned);
}

TEST(Cx86Isa, StoreOperands)
{
    StaticInst inst = roundtrip([](cx86::Assembler &as) {
        as.store(cx::r7, cx::rbp, -8, 8);
    });
    EXPECT_EQ(inst.length, 3); // disp8
    EXPECT_TRUE(inst.uops[0].isStore());
    EXPECT_EQ(inst.uops[0].rs1, cx::rbp); // base
    EXPECT_EQ(inst.uops[0].rs2, cx::r7);  // data
    EXPECT_EQ(inst.uops[0].imm, -8);
}

TEST(Cx86Isa, PushCracksToTwoUops)
{
    StaticInst inst =
        roundtrip([](cx86::Assembler &as) { as.push(cx::r3); });
    ASSERT_EQ(inst.numUops, 2);
    EXPECT_EQ(inst.uops[0].op, UopOp::Sub); // rsp -= 8
    EXPECT_EQ(inst.uops[0].rd, cx::rsp);
    EXPECT_TRUE(inst.uops[1].isStore());
}

TEST(Cx86Isa, PopCracksToTwoUops)
{
    StaticInst inst =
        roundtrip([](cx86::Assembler &as) { as.pop(cx::r3); });
    ASSERT_EQ(inst.numUops, 2);
    EXPECT_TRUE(inst.uops[0].isLoad());
    EXPECT_EQ(inst.uops[1].op, UopOp::Add); // rsp += 8
}

TEST(Cx86Isa, CallCracksToFourUops)
{
    cx86::Assembler as;
    AsmLabel l = as.newLabel();
    as.call(l);
    as.bind(l);
    as.nop();
    StaticInst inst = first(as.finish());
    ASSERT_EQ(inst.numUops, 4);
    EXPECT_TRUE(inst.isCall);
    EXPECT_EQ(inst.uops[0].op, UopOp::Auipc); // link = pc + 5
    EXPECT_EQ(inst.uops[0].imm, 5);
    EXPECT_TRUE(inst.uops[2].isStore());
    EXPECT_EQ(inst.uops[3].op, UopOp::Jump);
    EXPECT_EQ(inst.directOffset, 5); // to the next instruction
}

TEST(Cx86Isa, RetCracksToThreeUops)
{
    StaticInst inst = roundtrip([](cx86::Assembler &as) { as.ret(); });
    ASSERT_EQ(inst.numUops, 3);
    EXPECT_TRUE(inst.isReturn);
    EXPECT_TRUE(inst.uops[0].isLoad());
    EXPECT_EQ(inst.uops[2].op, UopOp::JumpReg);
}

TEST(Cx86Isa, ReadModifyFormsCrack)
{
    StaticInst addm = roundtrip([](cx86::Assembler &as) {
        as.addMem(cx::r1, cx::r2, 64);
    });
    ASSERT_EQ(addm.numUops, 2);
    EXPECT_TRUE(addm.uops[0].isLoad());
    EXPECT_EQ(addm.uops[1].op, UopOp::Add);

    StaticInst adds = roundtrip([](cx86::Assembler &as) {
        as.addStore(cx::r1, cx::r2, 64);
    });
    ASSERT_EQ(adds.numUops, 3);
    EXPECT_TRUE(adds.uops[0].isLoad());
    EXPECT_TRUE(adds.uops[2].isStore());
}

class Cx86JccTest : public ::testing::TestWithParam<int>
{
};

TEST_P(Cx86JccTest, DecodesWithCondition)
{
    const auto cond = FlagCond(GetParam());
    cx86::Assembler as;
    AsmLabel l = as.newLabel();
    as.jcc(cond, l);
    as.bind(l);
    as.nop();
    StaticInst inst = first(as.finish());
    ASSERT_TRUE(inst.valid);
    EXPECT_EQ(inst.length, 5);
    EXPECT_TRUE(inst.isCondCtrl);
    EXPECT_EQ(inst.uops[0].cond, cond);
    EXPECT_EQ(inst.uops[0].rs1, cx::rflags);
    EXPECT_EQ(inst.directOffset, 5);
}

INSTANTIATE_TEST_SUITE_P(AllConds, Cx86JccTest, ::testing::Range(0, 10));

TEST(Cx86Semantics, CmpFlagsAndConds)
{
    // 3 vs 5: lt, ltu.
    uint64_t f1 = computeCmpFlags(3, 5);
    EXPECT_TRUE(flagCondTaken(FlagCond::Lt, f1));
    EXPECT_TRUE(flagCondTaken(FlagCond::Ltu, f1));
    EXPECT_TRUE(flagCondTaken(FlagCond::Ne, f1));
    EXPECT_FALSE(flagCondTaken(FlagCond::Ge, f1));

    // Equal values.
    uint64_t f2 = computeCmpFlags(9, 9);
    EXPECT_TRUE(flagCondTaken(FlagCond::Eq, f2));
    EXPECT_TRUE(flagCondTaken(FlagCond::Le, f2));
    EXPECT_TRUE(flagCondTaken(FlagCond::Geu, f2));
    EXPECT_FALSE(flagCondTaken(FlagCond::Gtu, f2));

    // Signed vs unsigned disagreement: -1 vs 1.
    uint64_t f3 = computeCmpFlags(uint64_t(-1), 1);
    EXPECT_TRUE(flagCondTaken(FlagCond::Lt, f3));  // signed: -1 < 1
    EXPECT_TRUE(flagCondTaken(FlagCond::Gtu, f3)); // unsigned: huge > 1

    // Signed overflow: INT64_MIN - 1 wraps positive.
    uint64_t f4 = computeCmpFlags(uint64_t(INT64_MIN), 1);
    EXPECT_TRUE(flagCondTaken(FlagCond::Lt, f4));
}

TEST(Cx86Isa, JmpRel32BothDirections)
{
    cx86::Assembler as;
    AsmLabel top = as.newLabel(), fwd = as.newLabel();
    as.bind(top);
    as.nop();
    as.jmp(fwd);   // at offset 1
    as.jmp(top);   // at offset 6
    as.bind(fwd);
    as.nop();
    const auto &code = as.finish();
    StaticInst fwd_jmp = cx86::decode(code.data() + 1, code.size() - 1);
    EXPECT_EQ(fwd_jmp.directOffset, 10); // 11 - 1
    StaticInst back_jmp = cx86::decode(code.data() + 6, code.size() - 6);
    EXPECT_EQ(back_jmp.directOffset, -6);
}

TEST(Cx86Isa, TruncatedWindowIsInvalid)
{
    cx86::Assembler as;
    as.movImm(cx::r1, 0x123456789LL); // 10 bytes
    const auto &code = as.finish();
    EXPECT_FALSE(cx86::decode(code.data(), 4).valid);
    EXPECT_TRUE(cx86::decode(code.data(), 10).valid);
}

TEST(Cx86Isa, UnknownOpcodeIsInvalid)
{
    const uint8_t junk[4] = {0xff, 0, 0, 0};
    EXPECT_FALSE(cx86::decode(junk, 4).valid);
}

TEST(Cx86Isa, ShiftForms)
{
    StaticInst shl = roundtrip([](cx86::Assembler &as) {
        as.shl(cx::r2, 5);
    });
    EXPECT_EQ(shl.length, 3);
    EXPECT_EQ(shl.uops[0].op, UopOp::Sll);
    EXPECT_EQ(shl.uops[0].imm, 5);

    StaticInst sarr = roundtrip([](cx86::Assembler &as) {
        as.sarr(cx::r2, cx::r3);
    });
    EXPECT_EQ(sarr.uops[0].op, UopOp::Sra);
    EXPECT_FALSE(sarr.uops[0].useImm);
}
