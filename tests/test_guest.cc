/**
 * @file
 * Guest-OS substrate tests: address spaces and paging, the
 * cooperative scheduler, syscalls, the shared-memory rings (host and
 * guest side), and the loader layout.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.hh"
#include "cpu/tlb.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"
#include "guest/ring.hh"
#include "guest/syscall_abi.hh"
#include "stack/topology.hh"

using namespace svb;

TEST(AddressSpace, MapAndTranslate)
{
    PhysMemory phys(1 << 22);
    FrameAllocator frames(0x10000, 1 << 22);
    AddressSpace as(phys, frames);
    const Addr frame = frames.allocFrames(1);
    as.mapPage(0x40000000, frame);
    EXPECT_EQ(as.translate(0x40000123), frame + 0x123);
    EXPECT_TRUE(as.isMapped(0x40000000));
    EXPECT_FALSE(as.isMapped(0x40001000));
}

TEST(AddressSpace, RegionsAreZeroedAndContiguous)
{
    PhysMemory phys(1 << 22);
    FrameAllocator frames(0x10000, 1 << 22);
    AddressSpace as(phys, frames);
    as.allocRegion(0x10000000, 3 * 4096);
    as.write(0x10000000 + 2 * 4096 + 8, 0xabcdef, 8);
    EXPECT_EQ(as.read(0x10000000 + 2 * 4096 + 8, 8), 0xabcdefu);
    EXPECT_EQ(as.read(0x10000000, 8), 0u);
}

TEST(AddressSpace, CrossPageBulkCopy)
{
    PhysMemory phys(1 << 22);
    FrameAllocator frames(0x10000, 1 << 22);
    AddressSpace as(phys, frames);
    as.allocRegion(0x20000000, 2 * 4096);
    std::vector<uint8_t> data(6000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = uint8_t(i);
    as.writeBytes(0x20000000 + 100, data.data(), data.size());
    std::vector<uint8_t> back(6000);
    as.readBytes(0x20000000 + 100, back.data(), back.size());
    EXPECT_EQ(data, back);
}

TEST(Tlb, HitMissFlush)
{
    PhysMemory phys(1 << 22);
    FrameAllocator frames(0x10000, 1 << 22);
    AddressSpace as(phys, frames);
    const Addr pa = as.allocRegion(0x30000000, 4096);

    StatGroup stats("t");
    Tlb tlb(TlbParams{"tlb", 16, 64}, stats);
    auto tr1 = tlb.translate(0x30000010, as.root(), phys, nullptr, 0);
    EXPECT_FALSE(tr1.fault);
    EXPECT_EQ(tr1.paddr, pa + 0x10);
    EXPECT_EQ(tlb.misses(), 1u);

    auto tr2 = tlb.translate(0x30000020, as.root(), phys, nullptr, 0);
    EXPECT_EQ(tr2.paddr, pa + 0x20);
    EXPECT_EQ(tlb.hits(), 1u);

    tlb.flush();
    tlb.translate(0x30000010, as.root(), phys, nullptr, 0);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, FaultsOnUnmapped)
{
    PhysMemory phys(1 << 22);
    FrameAllocator frames(0x10000, 1 << 22);
    AddressSpace as(phys, frames);
    StatGroup stats("t");
    Tlb tlb(TlbParams{"tlb", 16, 64}, stats);
    EXPECT_TRUE(
        tlb.translate(0x66000000, as.root(), phys, nullptr, 0).fault);
}

TEST(Ring, HostPushPopWrapAround)
{
    PhysMemory phys(1 << 20);
    ring::Ring rg;
    rg.phys = 0x1000;
    rg.numSlots = 8;
    phys.clearRange(rg.phys, ring::byteSize(8));

    std::vector<uint8_t> out;
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 8; ++i) {
            const uint64_t payload = uint64_t(round) * 100 + i;
            ASSERT_TRUE(ring::tryPush(phys, rg, &payload, 8));
        }
        const uint64_t extra = 1;
        EXPECT_FALSE(ring::tryPush(phys, rg, &extra, 8)); // full
        for (int i = 0; i < 8; ++i) {
            ASSERT_TRUE(ring::tryPop(phys, rg, out));
            ASSERT_EQ(out.size(), 8u);
            uint64_t v;
            std::memcpy(&v, out.data(), 8);
            EXPECT_EQ(v, uint64_t(round) * 100 + i);
        }
        EXPECT_FALSE(ring::tryPop(phys, rg, out)); // empty
    }
}

TEST(Kernel, YieldRotatesProcessesOnOneCore)
{
    // Two processes on core 0 increment their own counters and yield;
    // both must make progress.
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);

    auto mkProgram = [&]() {
        gen::ProgramBuilder pb;
        const Addr counter = pb.addZeroData(8);
        auto f = pb.beginFunction("main", 0);
        const int ptr = f.newVreg(), v = f.newVreg(), i = f.newVreg();
        const int loop = f.newLabel(), done = f.newLabel();
        f.lea(ptr, counter);
        f.movi(i, 0);
        f.label(loop);
        f.brcondi(gen::CondOp::Ge, i, 50, done);
        f.load(v, ptr, 0, 8, false);
        f.bini(gen::BinOp::Add, v, v, 1);
        f.store(ptr, 0, v, 8);
        f.syscall(sys::sysYield, {});
        f.addi(i, i, 1);
        f.br(loop);
        f.label(done);
        f.ret();
        pb.setEntry("main");
        return std::pair(pb.take(), counter);
    };

    auto [prog_a, counter_a] = mkProgram();
    auto [prog_b, counter_b] = mkProgram();
    LoadedProgram a = loadProcess(
        sys.kernel(), gen::compileProgram(prog_a, IsaId::Riscv), "a", 0);
    LoadedProgram b = loadProcess(
        sys.kernel(), gen::compileProgram(prog_b, IsaId::Riscv), "b", 0);
    sys.scheduleIdleCores();
    sys.run(10'000'000);

    EXPECT_EQ(sys.kernel().process(a.pid).space->read(counter_a, 8), 50u);
    EXPECT_EQ(sys.kernel().process(b.pid).space->read(counter_b, 8), 50u);
    EXPECT_EQ(sys.kernel().process(a.pid).state, ProcState::Exited);
    EXPECT_EQ(sys.kernel().process(b.pid).state, ProcState::Exited);
}

TEST(Kernel, GuestRingsCrossCores)
{
    // A producer on core 0 sends 20 messages through a shared ring to
    // a consumer on core 1, which accumulates the payloads.
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    System sys(cfg);

    const Addr ring_phys = sys.frames().allocFrames(1);
    sys.phys().clearRange(ring_phys, 4096);
    const Addr ring_va = layout::sharedBase;

    gen::ProgramBuilder producer;
    {
        const gen::GuestLib lib = gen::GuestLib::addTo(producer);
        auto f = producer.beginFunction("main", 0);
        const int64_t buf_off = f.localBytes(16);
        const int buf = f.newVreg(), rg = f.newVreg(), i = f.newVreg(),
                  len = f.imm(8);
        const int loop = f.newLabel(), done = f.newLabel();
        f.movi(rg, int64_t(ring_va));
        f.movi(i, 0);
        f.label(loop);
        f.brcondi(gen::CondOp::Ge, i, 20, done);
        f.leaLocal(buf, buf_off);
        f.store(buf, 0, i, 8);
        f.callVoid(lib.ringSend, {rg, buf, len});
        f.addi(i, i, 1);
        f.br(loop);
        f.label(done);
        f.ret();
        producer.setEntry("main");
    }

    gen::ProgramBuilder consumer;
    Addr sum_addr = 0;
    {
        sum_addr = consumer.addZeroData(8);
        const gen::GuestLib lib = gen::GuestLib::addTo(consumer);
        auto f = consumer.beginFunction("main", 0);
        const int64_t buf_off = f.localBytes(16);
        const int buf = f.newVreg(), rg = f.newVreg(), i = f.newVreg(),
                  sum = f.newVreg(), v = f.newVreg(), out = f.newVreg();
        const int loop = f.newLabel(), done = f.newLabel();
        f.movi(rg, int64_t(ring_va));
        f.movi(sum, 0);
        f.movi(i, 0);
        f.label(loop);
        f.brcondi(gen::CondOp::Ge, i, 20, done);
        f.leaLocal(buf, buf_off);
        f.callVoid(lib.ringRecv, {rg, buf});
        f.load(v, buf, 0, 8, false);
        f.bin(gen::BinOp::Add, sum, sum, v);
        f.addi(i, i, 1);
        f.br(loop);
        f.label(done);
        f.lea(out, sum_addr);
        f.store(out, 0, sum, 8);
        f.ret();
        consumer.setEntry("main");
    }

    LoadedProgram p = loadProcess(
        sys.kernel(), gen::compileProgram(producer.take(), IsaId::Riscv),
        "producer", 0);
    LoadedProgram c = loadProcess(
        sys.kernel(), gen::compileProgram(consumer.take(), IsaId::Riscv),
        "consumer", 1);
    mapSharedInto(sys.kernel(), p.pid, ring_va, ring_phys, 4096);
    mapSharedInto(sys.kernel(), c.pid, ring_va, ring_phys, 4096);
    sys.scheduleIdleCores();
    const uint64_t ran = sys.run(20'000'000);
    EXPECT_LT(ran, 20'000'000u);
    EXPECT_EQ(sys.kernel().process(c.pid).space->read(sum_addr, 8),
              uint64_t(19 * 20 / 2));
}

TEST(Loader, LayoutAndSymbols)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);

    gen::ProgramBuilder pb;
    pb.addZeroData(128);
    gen::GuestLib::addTo(pb);
    auto f = pb.beginFunction("main", 0);
    f.ret();
    pb.setEntry("main");
    LoadableImage image = gen::compileProgram(pb.take(), IsaId::Riscv);

    EXPECT_GT(image.symbols.size(), 5u);
    EXPECT_EQ(image.symbolAt(0), "_start");

    LoadedProgram lp = loadProcess(sys.kernel(), image, "layout", 0);
    const Process &proc = sys.kernel().process(lp.pid);
    EXPECT_TRUE(proc.space->isMapped(layout::codeBase));
    EXPECT_TRUE(proc.space->isMapped(layout::dataBase));
    EXPECT_TRUE(proc.space->isMapped(layout::heapBase));
    EXPECT_TRUE(proc.space->isMapped(layout::stackTop - 4096));
    EXPECT_EQ(lp.entry, layout::codeBase);
}
