/**
 * @file
 * The fault-injection / resilience layer's contracts:
 *  - BackoffSchedule pins its golden sequence (first delay exactly the
 *    base, decorrelated jitter within [base, min(cap, 3*prev)] after,
 *    byte-reproducible per seed);
 *  - CircuitBreaker walks the closed/open/half-open state machine
 *    deterministically, one probe at a time;
 *  - FaultInjector draws are reproducible and a zero-rate config
 *    injects nothing;
 *  - SVBENCH_FAULTS parses (preset, key=value list, garbage ignored);
 *  - InstancePool::kill() tears slots down as crash+eviction and the
 *    next request pays a fresh cold start;
 *  - the full resilience sweep (faults + retries + breaker) is
 *    byte-identical at any SVBENCH_JOBS value, conserves invocation
 *    accounting, and reports 100% availability exactly when every
 *    fault rate is zero;
 *  - CheckpointStore's restore-fault hook discards disk restores
 *    deterministically.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/checkpoint_store.hh"
#include "load/load_runner.hh"
#include "sim/rng.hh"
#include "workloads/workloads.hh"

using namespace svb;
using namespace svb::load;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

struct TempCacheFile
{
    explicit TempCacheFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~TempCacheFile() { std::remove(path.c_str()); }
    std::string path;
};

struct TempCheckpointDir
{
    explicit TempCheckpointDir(std::string d) : dir(std::move(d))
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    ~TempCheckpointDir()
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    std::string dir;
};

/** Set SVBENCH_FAULTS for one scope, restoring the prior value. */
struct ScopedFaultsEnv
{
    explicit ScopedFaultsEnv(const char *value)
    {
        const char *prev = std::getenv("SVBENCH_FAULTS");
        if (prev != nullptr) {
            had = true;
            old = prev;
        }
        if (value != nullptr)
            setenv("SVBENCH_FAULTS", value, 1);
        else
            unsetenv("SVBENCH_FAULTS");
    }
    ~ScopedFaultsEnv()
    {
        if (had)
            setenv("SVBENCH_FAULTS", old.c_str(), 1);
        else
            unsetenv("SVBENCH_FAULTS");
    }
    bool had = false;
    std::string old;
};

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

LoadScenario
faultyScenario(const std::string &name, double fault_scale)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    LoadScenario s;
    s.name = name;
    s.cluster.system = SystemConfig::paperConfig(IsaId::Riscv);
    s.cluster.startDb = false;
    s.cluster.startMemcached = false;
    s.mix = {{spec, &workloads::workloadImpl(spec.workload), 1.0}};
    s.arrival.kind = ArrivalKind::Poisson;
    s.arrival.ratePerSec = 400.0;
    s.pool.policy = KeepAlivePolicy::FixedTtl;
    s.pool.maxInstances = 4;
    s.pool.keepAliveNs = 2'000'000; // 2 ms: forces TTL expiries
    s.fault = defaultFaultPreset().scaled(fault_scale);
    s.retry.maxAttempts = 3;
    s.retry.backoffBaseNs = 500'000;
    s.retry.backoffCapNs = 10'000'000;
    s.retry.timeoutNs = 50'000'000;
    s.breaker.enabled = true;
    s.invocations = 400;
    s.seed = 77;
    return s;
}

} // namespace

// --------------------------------------------------------------------------
// Backoff schedule
// --------------------------------------------------------------------------

TEST(Backoff, FirstDelayIsExactlyTheBaseAndJitterStaysBounded)
{
    RetryPolicy pol;
    pol.backoffBaseNs = 1'000;
    pol.backoffCapNs = 100'000;
    BackoffSchedule sched(pol);
    Rng rng(0xbac0ff);

    uint64_t prev = sched.nextDelayNs(rng);
    EXPECT_EQ(prev, 1'000u); // anchors the whole sequence
    for (int k = 0; k < 64; ++k) {
        const uint64_t hi =
            std::min<uint64_t>(pol.backoffCapNs, 3 * prev);
        const uint64_t d = sched.nextDelayNs(rng);
        EXPECT_GE(d, pol.backoffBaseNs) << "step " << k;
        EXPECT_LE(d, std::max<uint64_t>(hi, pol.backoffBaseNs))
            << "step " << k;
        prev = d;
    }
}

TEST(Backoff, SequenceIsReproduciblePerSeed)
{
    RetryPolicy pol;
    pol.backoffBaseNs = 2'500;
    pol.backoffCapNs = 1'000'000;

    auto sequence = [&pol](uint64_t seed) {
        BackoffSchedule sched(pol);
        Rng rng(seed);
        std::vector<uint64_t> out;
        for (int k = 0; k < 32; ++k)
            out.push_back(sched.nextDelayNs(rng));
        return out;
    };
    EXPECT_EQ(sequence(7), sequence(7));
    EXPECT_NE(sequence(7), sequence(8));
}

TEST(Backoff, CapSaturatesAndZeroBaseMeansImmediateRetry)
{
    RetryPolicy pol;
    pol.backoffBaseNs = 5'000;
    pol.backoffCapNs = 6'000; // cap < 3*base: clamps immediately
    BackoffSchedule sched(pol);
    Rng rng(11);
    EXPECT_EQ(sched.nextDelayNs(rng), 5'000u);
    for (int k = 0; k < 16; ++k)
        EXPECT_LE(sched.nextDelayNs(rng), 6'000u);

    RetryPolicy none;
    none.backoffBaseNs = 0;
    BackoffSchedule zero(none);
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(zero.nextDelayNs(rng), 0u);
}

// --------------------------------------------------------------------------
// Circuit breaker
// --------------------------------------------------------------------------

TEST(CircuitBreaker, WalksClosedOpenHalfOpenDeterministically)
{
    BreakerConfig cfg;
    cfg.enabled = true;
    cfg.failureThreshold = 3;
    cfg.openCooldownNs = 1'000;
    cfg.halfOpenSuccesses = 2;
    CircuitBreaker br(cfg);

    // Closed admits everything; failureThreshold consecutive
    // failures open it.
    EXPECT_TRUE(br.admit(0));
    br.onFailure(10);
    br.onFailure(20);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    br.onFailure(30);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(br.timesOpened(), 1u);
    EXPECT_EQ(br.lastOpenedAtNs(), 30u);

    // Open sheds until the cooldown elapsed, then admits one probe.
    EXPECT_FALSE(br.admit(100));
    EXPECT_FALSE(br.admit(1'029));
    EXPECT_TRUE(br.admit(1'030));
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
    // One probe at a time: the rest shed.
    EXPECT_FALSE(br.admit(1'040));

    // halfOpenSuccesses successful probes close it again.
    br.onSuccess(1'100);
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
    EXPECT_TRUE(br.admit(1'110));
    br.onSuccess(1'200);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);

    // A failed probe re-opens immediately with a fresh cooldown.
    br.onFailure(2'000);
    br.onFailure(2'010);
    br.onFailure(2'020);
    ASSERT_EQ(br.state(), CircuitBreaker::State::Open);
    EXPECT_TRUE(br.admit(3'020)); // probe
    br.onFailure(3'100);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(br.timesOpened(), 3u);
    EXPECT_EQ(br.lastOpenedAtNs(), 3'100u);
    EXPECT_FALSE(br.admit(3'200));

    EXPECT_STREQ(breakerStateName(br.state()), "open");
}

TEST(CircuitBreaker, DisabledAdmitsEverythingForever)
{
    CircuitBreaker br(BreakerConfig{});
    for (int k = 0; k < 100; ++k) {
        EXPECT_TRUE(br.admit(uint64_t(k) * 10));
        br.onFailure(uint64_t(k) * 10 + 5);
    }
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    EXPECT_EQ(br.timesOpened(), 0u);
}

// --------------------------------------------------------------------------
// Fault injector and SVBENCH_FAULTS parsing
// --------------------------------------------------------------------------

TEST(FaultInjector, ZeroRateConfigInjectsNothing)
{
    FaultInjector inj(FaultConfig{}, Rng(5).split(3));
    EXPECT_FALSE(inj.enabled());
    for (int k = 0; k < 200; ++k) {
        const FaultInjector::Draw d = inj.draw(k % 2 == 0);
        EXPECT_FALSE(d.restoreCorrupt);
        EXPECT_FALSE(d.coldFail);
        EXPECT_FALSE(d.straggler);
        EXPECT_FALSE(d.crash);
    }
}

TEST(FaultInjector, DrawsAreReproducibleAndHitTheConfiguredRates)
{
    FaultConfig cfg;
    cfg.crashProb = 0.25;
    cfg.stragglerProb = 0.10;
    cfg.coldStartFailProb = 0.50;

    auto sample = [&cfg](uint64_t seed) {
        FaultInjector inj(cfg, Rng(seed).split(3));
        uint64_t crashes = 0, stragglers = 0, coldFails = 0;
        const int n = 20'000;
        for (int k = 0; k < n; ++k) {
            const FaultInjector::Draw d = inj.draw(true);
            crashes += d.crash;
            stragglers += d.straggler;
            coldFails += d.coldFail;
            EXPECT_GE(d.crashFrac, 0.1);
            EXPECT_LT(d.crashFrac, 0.9);
        }
        return std::vector<uint64_t>{crashes, stragglers, coldFails};
    };
    const auto a = sample(99);
    EXPECT_EQ(a, sample(99));
    // Long-run rates within 10% relative of the configured ones.
    EXPECT_NEAR(double(a[0]) / 20'000, 0.25, 0.025);
    EXPECT_NEAR(double(a[1]) / 20'000, 0.10, 0.010);
    EXPECT_NEAR(double(a[2]) / 20'000, 0.50, 0.050);
}

TEST(FaultConfigEnv, ParsesPresetListAndGarbage)
{
    {
        ScopedFaultsEnv env(nullptr);
        EXPECT_FALSE(faultsFromEnv().any());
    }
    {
        ScopedFaultsEnv env("0");
        EXPECT_FALSE(faultsFromEnv().any());
    }
    {
        ScopedFaultsEnv env("1");
        const FaultConfig cfg = faultsFromEnv();
        EXPECT_TRUE(cfg.any());
        EXPECT_DOUBLE_EQ(cfg.coldStartFailProb, 0.05);
        EXPECT_DOUBLE_EQ(cfg.crashProb, 0.02);
    }
    {
        ScopedFaultsEnv env(
            "cold=0.5,crash=0.1,straggler-factor=4,bogus=9,junk");
        const FaultConfig cfg = faultsFromEnv();
        EXPECT_DOUBLE_EQ(cfg.coldStartFailProb, 0.5);
        EXPECT_DOUBLE_EQ(cfg.crashProb, 0.1);
        EXPECT_DOUBLE_EQ(cfg.stragglerFactor, 4.0);
        EXPECT_DOUBLE_EQ(cfg.stragglerProb, 0.0);
    }
    // Scaling clamps into [0, 1] and scale 0 turns everything off.
    const FaultConfig preset = defaultFaultPreset();
    EXPECT_FALSE(preset.scaled(0.0).any());
    EXPECT_DOUBLE_EQ(preset.scaled(100.0).coldStartFailProb, 1.0);
}

// --------------------------------------------------------------------------
// Pool teardown (kill)
// --------------------------------------------------------------------------

TEST(InstancePool, KillCountsCrashPlusEvictionAndGoesColdAgain)
{
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::FixedTtl;
    cfg.maxInstances = 2;
    cfg.keepAliveNs = 1'000'000;
    InstancePool pool(cfg);

    auto a = pool.acquire(0, 0);
    EXPECT_TRUE(a.cold);
    pool.kill(a.slot, 5'000); // crashes mid-request
    EXPECT_EQ(pool.stats().crashes, 1u);
    EXPECT_EQ(pool.stats().evictions, 1u);
    EXPECT_EQ(pool.liveInstances(), 0u);

    // The dead instance is gone: the same function pays a fresh cold
    // start well within what would have been its keep-alive window.
    auto b = pool.acquire(0, 6'000);
    EXPECT_TRUE(b.cold);
    pool.release(b.slot, 7'000);
    EXPECT_EQ(pool.stats().coldStarts, 2u);
}

// --------------------------------------------------------------------------
// End-to-end resilience sweep
// --------------------------------------------------------------------------

TEST(ResilienceSweep, DeterministicAcrossWorkersAndConservesAccounting)
{
    TempCheckpointDir ckpts("ckpt_fault_sweep");

    LoadScenario noRetry = faultyScenario("t-fault-x4-noretry", 4.0);
    noRetry.retry = RetryPolicy{}; // every injected failure is final
    noRetry.breaker = BreakerConfig{};
    const std::vector<LoadScenario> scenarios = {
        faultyScenario("t-fault-off", 0.0),
        faultyScenario("t-fault-x1", 1.0),
        faultyScenario("t-fault-x4", 4.0),
        noRetry,
    };

    TempCacheFile serial_file("test_fault_serial.csv");
    std::vector<LoadResult> serial;
    {
        ResultCache cache(serial_file.path);
        serial = loadSweep(cache, scenarios, 1);
    }

    TempCacheFile par_file("test_fault_jobs8.csv");
    std::vector<LoadResult> wide;
    {
        ResultCache cache(par_file.path);
        wide = loadSweep(cache, scenarios, 8);
    }

    ASSERT_EQ(serial.size(), wide.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << scenarios[i].name;
        // Byte-identical distributions and counters at any job count.
        EXPECT_TRUE(serial[i].latency == wide[i].latency);
        EXPECT_TRUE(serial[i].goodLatency == wide[i].goodLatency);
        EXPECT_EQ(serial[i].histoFingerprint, wide[i].histoFingerprint);
        EXPECT_EQ(serial[i].goodFingerprint, wide[i].goodFingerprint);
        EXPECT_EQ(serial[i].crashes, wide[i].crashes);
        EXPECT_EQ(serial[i].retries, wide[i].retries);
        EXPECT_EQ(serial[i].sheds, wide[i].sheds);

        // Conservation: every invocation terminates exactly once.
        const LoadResult &r = serial[i];
        EXPECT_EQ(r.succeeded + r.failedInvocations + r.sheds,
                  r.invocations);
        EXPECT_EQ(r.latency.count(), r.invocations);
        EXPECT_EQ(r.goodLatency.count(), r.succeeded);
        EXPECT_EQ(r.errorLatency.count(),
                  r.failedInvocations + r.sheds);
        // Every kill() (crash or failed cold start) is an eviction.
        EXPECT_GE(r.evictions, r.crashes + r.coldStartFailures);
    }
    // CSV backing files byte-identical too.
    const std::string serial_csv = slurp(serial_file.path);
    EXPECT_FALSE(serial_csv.empty());
    EXPECT_EQ(serial_csv, slurp(par_file.path));

    // Availability: exactly 100% with every rate zero; with faults
    // injected, retries may or may not recover everything, but
    // without retries every injected terminal failure is client
    // visible, so availability must fall below 100%.
    const LoadResult &off = serial[0];
    EXPECT_EQ(off.succeeded, off.invocations);
    EXPECT_DOUBLE_EQ(off.availabilityPct(), 100.0);
    EXPECT_EQ(off.crashes + off.coldStartFailures + off.stragglers +
                  off.corruptRestores + off.retries + off.sheds,
              0u);
    EXPECT_GT(serial[1].crashes + serial[1].coldStartFailures, 0u);
    EXPECT_GT(serial[1].retries, 0u);
    const LoadResult &bare = serial[3];
    EXPECT_GT(bare.crashes + bare.coldStartFailures, 0u);
    EXPECT_EQ(bare.retries, 0u);
    EXPECT_EQ(bare.failedInvocations,
              bare.crashes + bare.coldStartFailures + bare.timeouts);
    EXPECT_LT(bare.availabilityPct(), 100.0);
    // Client resilience helps: retries at the same fault scale keep
    // availability at or above the bare policy's.
    EXPECT_GE(serial[2].availabilityPct(), bare.availabilityPct());
}

// --------------------------------------------------------------------------
// CheckpointStore restore-fault hook
// --------------------------------------------------------------------------

TEST(CheckpointStoreFault, HookDiscardsDiskRestoresDeterministically)
{
    TempCheckpointDir ckpts("ckpt_fault_hook");
    CheckpointStore &store = CheckpointStore::global();
    const std::string fp = "fault-hook-test-fingerprint";

    // Prepare and publish once, so a .ckpt file exists on disk.
    bool claimed = false;
    EXPECT_EQ(store.acquire(fp, &claimed), nullptr);
    ASSERT_TRUE(claimed);
    Checkpoint cp;
    cp.setScalar("state.value", 42);
    store.publish(fp, std::move(cp));

    // Drop the in-memory copy but keep the file; inject a fault on
    // the next disk restore of this fingerprint only.
    store.resetForTest(ckpts.dir);
    uint64_t hookCalls = 0;
    store.setRestoreFaultHook([&](const std::string &f) {
        ++hookCalls;
        return f == fp;
    });

    // The restore is discarded as if the file were corrupt: the
    // caller must re-prepare.
    claimed = false;
    EXPECT_EQ(store.acquire(fp, &claimed), nullptr);
    EXPECT_TRUE(claimed);
    EXPECT_EQ(hookCalls, 1u);
    EXPECT_EQ(store.restoreFaultsInjected(), 1u);
    store.release(fp);

    // Clear the hook: the same file restores fine (it was never
    // actually corrupt).
    store.setRestoreFaultHook(nullptr);
    claimed = false;
    const auto back = store.acquire(fp, &claimed);
    ASSERT_NE(back, nullptr);
    EXPECT_FALSE(claimed);
    EXPECT_EQ(back->getScalar("state.value"), 42u);
    EXPECT_EQ(store.restoreFaultsInjected(), 1u); // unchanged by reuse
}
