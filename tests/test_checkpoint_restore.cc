/**
 * @file
 * The checkpoint-once / restore-many contract.
 *
 * The non-negotiable invariant: an experiment that restores a
 * prepared-state checkpoint produces measurements BYTE-IDENTICAL to
 * one that boots and settles from scratch — same RequestStats, same
 * full post-measurement stats snapshot, same CSV row. Verified here
 * for both ISAs, with and without database containers, in detailed
 * and emulation mode; plus the loader's corruption defences and the
 * ResultCache's tolerance of truncated backing files.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "core/checkpoint_store.hh"
#include "mem/phys_memory.hh"
#include "core/result_cache.hh"
#include "workloads/workloads.hh"

using namespace svb;

namespace
{

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

ClusterConfig
standaloneConfig(IsaId isa)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = false;
    cfg.startMemcached = false;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Redirect the global CheckpointStore to a private directory for the
 *  duration of one test, deleting it (and any snapshots) afterwards. */
struct TempCheckpointDir
{
    explicit TempCheckpointDir(std::string d) : dir(std::move(d))
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    ~TempCheckpointDir()
    {
        std::filesystem::remove_all(dir);
        // Leave the store pointing at a dead directory with empty
        // caches so later tests must opt in with their own dir.
        CheckpointStore::global().resetForTest(dir);
    }
    std::string dir;
};

void
expectSameStats(const RequestStats &a, const RequestStats &b,
                const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.insts, b.insts) << label;
    EXPECT_EQ(a.uops, b.uops) << label;
    EXPECT_EQ(a.l1iMisses, b.l1iMisses) << label;
    EXPECT_EQ(a.l1dMisses, b.l1dMisses) << label;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << label;
    EXPECT_EQ(a.branches, b.branches) << label;
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts) << label;
    EXPECT_EQ(a.itlbMisses, b.itlbMisses) << label;
    EXPECT_EQ(a.dtlbMisses, b.dtlbMisses) << label;
}

/**
 * Run the same function on two independently constructed runners.
 * The first prepares from scratch and publishes the checkpoint; the
 * second restores it. Everything measurable must match byte for byte,
 * including the full post-measurement stats tree.
 */
void
checkRoundTrip(const ClusterConfig &cfg, const std::string &fn,
               const std::string &dir)
{
    TempCheckpointDir ckpts(dir);
    const FunctionSpec spec = specFor(fn);
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);

    ExperimentRunner fresh(cfg);
    const FunctionResult a = fresh.runFunction(spec, impl);
    ASSERT_TRUE(a.ok) << fn << ": fresh run failed";
    const auto snapA = fresh.cluster().system().stats().snapshotAll();

    // The checkpoint file must exist on disk now.
    const std::string fp = CheckpointStore::fingerprint(cfg, spec);
    EXPECT_TRUE(std::filesystem::exists(
        CheckpointStore::global().pathFor(fp)));

    ExperimentRunner restored(cfg);
    const FunctionResult b = restored.runFunction(spec, impl);
    ASSERT_TRUE(b.ok) << fn << ": restored run failed";
    const auto snapB = restored.cluster().system().stats().snapshotAll();

    expectSameStats(a.cold, b.cold, fn + " cold");
    expectSameStats(a.warm, b.warm, fn + " warm");
    EXPECT_EQ(snapA, snapB) << fn
                            << ": post-measurement stats trees differ";
}

} // namespace

TEST(CheckpointStoreTest, FingerprintSharesBackendAblationPoints)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    const ClusterConfig base = standaloneConfig(IsaId::Riscv);

    // Backend-only parameters must NOT change the fingerprint: the
    // whole point is that ablation points over latencies, prefetchers,
    // O3 geometry and predictor kind reuse one prepared snapshot.
    ClusterConfig latency = base;
    latency.system.caches.l2.hitLatency = 40;
    latency.system.dram.rowMissLatency = 200;
    ClusterConfig prefetch = base;
    prefetch.system.caches.l1d.nextLinePrefetch = true;
    ClusterConfig o3geom = base;
    o3geom.system.o3.robEntries = 64;
    ClusterConfig bp = base;
    bp.system.o3.bp.kind = BpKind::Bimodal;
    bp.system.o3.bp.tableEntries = 256;

    const std::string fpBase = CheckpointStore::fingerprint(base, spec);
    EXPECT_EQ(fpBase, CheckpointStore::fingerprint(latency, spec));
    EXPECT_EQ(fpBase, CheckpointStore::fingerprint(prefetch, spec));
    EXPECT_EQ(fpBase, CheckpointStore::fingerprint(o3geom, spec));
    EXPECT_EQ(fpBase, CheckpointStore::fingerprint(bp, spec));

    // Frontend-visible parameters MUST change it.
    ClusterConfig otherIsa = standaloneConfig(IsaId::Cx86);
    ClusterConfig geometry = base;
    geometry.system.caches.l2.sizeBytes = 256 * 1024;
    ClusterConfig withDb = base;
    withDb.startDb = true;
    EXPECT_NE(fpBase, CheckpointStore::fingerprint(otherIsa, spec));
    EXPECT_NE(fpBase, CheckpointStore::fingerprint(geometry, spec));
    EXPECT_NE(fpBase, CheckpointStore::fingerprint(withDb, spec));
    EXPECT_NE(fpBase,
              CheckpointStore::fingerprint(base, specFor("aes-go")));

    // The lukewarm pair fingerprint is distinct from the solo one.
    const FunctionSpec other = specFor("aes-go");
    EXPECT_NE(fpBase, CheckpointStore::fingerprint(base, spec, &other));
}

TEST(CheckpointRestoreTest, ByteIdenticalRiscv)
{
    checkRoundTrip(standaloneConfig(IsaId::Riscv), "fibonacci-go",
                   "ckpt_rt_riscv");
}

TEST(CheckpointRestoreTest, ByteIdenticalCx86)
{
    checkRoundTrip(standaloneConfig(IsaId::Cx86), "fibonacci-go",
                   "ckpt_rt_cx86");
}

TEST(CheckpointRestoreTest, ByteIdenticalWithCassandraAndMemcached)
{
    // geo talks to the database; the full store bootstrap rides in the
    // checkpoint, which is where restore-many saves the most time.
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.dbKind = db::DbKind::Cassandra;
    checkRoundTrip(cfg, "geo", "ckpt_rt_db");
}

TEST(CheckpointRestoreTest, EmulationRestoreMatchesAndUsesNs)
{
    TempCheckpointDir ckpts("ckpt_rt_emu");
    const FunctionSpec spec = specFor("fibonacci-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
    const ClusterConfig cfg = standaloneConfig(IsaId::Riscv);

    ExperimentRunner fresh(cfg);
    const EmuResult a = fresh.runFunctionEmu(spec, impl);
    ASSERT_TRUE(a.ok);
    ExperimentRunner restored(cfg);
    const EmuResult b = restored.runFunctionEmu(spec, impl);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.coldNs, b.coldNs);
    EXPECT_EQ(a.warmNs, b.warmNs);

    // Unit correctness: at 500 MHz one cycle is 2 ns, and the guest's
    // cycle-level behaviour does not depend on the clock label, so the
    // reported latencies must be exactly double the 1 GHz ones.
    ClusterConfig slow = cfg;
    slow.system.clockMHz = 500;
    ExperimentRunner slowRunner(slow);
    const EmuResult s = slowRunner.runFunctionEmu(spec, impl);
    ASSERT_TRUE(s.ok);
    EXPECT_EQ(s.coldNs, 2 * a.coldNs);
    EXPECT_EQ(s.warmNs, 2 * a.warmNs);
}

TEST(CheckpointRestoreTest, CsvRowByteIdentity)
{
    TempCheckpointDir ckpts("ckpt_rt_csv");
    const FunctionSpec spec = specFor("aes-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
    const ClusterConfig cfg = standaloneConfig(IsaId::Riscv);

    const std::string fileA = "ckpt_csv_a.csv";
    const std::string fileB = "ckpt_csv_b.csv";
    std::remove(fileA.c_str());
    std::remove(fileB.c_str());

    {
        ResultCache cache(fileA); // miss path: prepares and publishes
        ASSERT_TRUE(cache.detailed(cfg, spec, impl).ok);
    }
    {
        ResultCache cache(fileB); // restore path: snapshot is warm
        ASSERT_TRUE(cache.detailed(cfg, spec, impl).ok);
    }
    const std::string a = slurp(fileA);
    const std::string b = slurp(fileB);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "restored run wrote a different CSV row";
    std::remove(fileA.c_str());
    std::remove(fileB.c_str());
}

TEST(CheckpointNegativeTest, LoaderRejectsCorruptFiles)
{
    TempCheckpointDir ckpts("ckpt_neg_files");
    std::filesystem::create_directories(ckpts.dir);
    std::string err;

    // Missing file.
    EXPECT_FALSE(Checkpoint::tryLoadFromFile(ckpts.dir + "/missing.ckpt",
                                             &err)
                     .has_value());
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;

    // Bad magic.
    const std::string badMagic = ckpts.dir + "/badmagic.ckpt";
    {
        std::ofstream os(badMagic, std::ios::binary);
        os << "DEADBEEF and then some";
    }
    EXPECT_FALSE(Checkpoint::tryLoadFromFile(badMagic, &err).has_value());
    EXPECT_NE(err.find("bad magic"), std::string::npos) << err;

    // A real checkpoint, truncated mid-entry: the error must name the
    // key being read when the bytes ran out.
    Checkpoint cp;
    cp.setScalar("alpha", 1);
    cp.setScalar("bravo.long.key.name", 2);
    cp.setString("charlie", "value");
    cp.setBlob("delta", std::vector<uint8_t>(64, 0xab));
    const std::string whole = ckpts.dir + "/whole.ckpt";
    cp.saveToFile(whole);
    const std::string full = slurp(whole);
    ASSERT_GT(full.size(), 40u);

    const std::string truncated = ckpts.dir + "/truncated.ckpt";
    {
        std::ofstream os(truncated, std::ios::binary);
        os.write(full.data(), std::streamsize(full.size() / 2));
    }
    EXPECT_FALSE(Checkpoint::tryLoadFromFile(truncated, &err).has_value());
    EXPECT_NE(err.find("while reading"), std::string::npos) << err;

    // An oversized length field must not allocate or crash.
    const std::string badLen = ckpts.dir + "/badlen.ckpt";
    {
        std::string bytes = full;
        // First scalar key length lives right after the 8-byte magic
        // and the 8-byte scalar count; stamp it with a huge value.
        for (size_t i = 16; i < 24; ++i)
            bytes[i] = char(0xff);
        std::ofstream os(badLen, std::ios::binary);
        os.write(bytes.data(), std::streamsize(bytes.size()));
    }
    EXPECT_FALSE(Checkpoint::tryLoadFromFile(badLen, &err).has_value());
    EXPECT_NE(err.find("exceeds"), std::string::npos) << err;

    // Trailing garbage is corruption, not slack.
    const std::string trailing = ckpts.dir + "/trailing.ckpt";
    {
        std::ofstream os(trailing, std::ios::binary);
        os.write(full.data(), std::streamsize(full.size()));
        os << "extra";
    }
    EXPECT_FALSE(Checkpoint::tryLoadFromFile(trailing, &err).has_value());
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;

    // The intact file still loads, and loads what was saved.
    std::optional<Checkpoint> back = Checkpoint::tryLoadFromFile(whole);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->getScalar("alpha"), 1u);
    EXPECT_EQ(back->getString("charlie"), "value");
    EXPECT_EQ(back->getBlob("delta").size(), 64u);
}

TEST(CheckpointNegativeTest, StoreTreatsCorruptFileAsMiss)
{
    TempCheckpointDir ckpts("ckpt_neg_store");
    std::filesystem::create_directories(ckpts.dir);
    CheckpointStore &store = CheckpointStore::global();
    const FunctionSpec spec = specFor("fibonacci-go");
    const std::string fp =
        CheckpointStore::fingerprint(standaloneConfig(IsaId::Riscv), spec);

    // Corrupt bytes where the checkpoint should be: acquire must hand
    // the caller the claim instead of crashing or returning garbage.
    {
        std::ofstream os(store.pathFor(fp), std::ios::binary);
        os << "this is not a checkpoint";
    }
    bool claimed = false;
    EXPECT_EQ(store.acquire(fp, &claimed), nullptr);
    EXPECT_TRUE(claimed);
    store.release(fp);

    // A valid checkpoint file carrying a DIFFERENT fingerprint (hash
    // collision / stale file) must also be a miss.
    Checkpoint other;
    other.setString("meta.fingerprint", "some other configuration");
    other.setScalar("x", 1);
    other.saveToFile(store.pathFor(fp));
    claimed = false;
    EXPECT_EQ(store.acquire(fp, &claimed), nullptr);
    EXPECT_TRUE(claimed);
    store.release(fp);
}

TEST(CheckpointNegativeTest, DoctoredMemoryImageIsAMiss)
{
    // A checkpoint whose memory image carries hostile page counts or
    // offsets must be refused at acquire() time — warn and miss, never
    // an OOB index in the restore path.
    TempCheckpointDir ckpts("ckpt_neg_doctored");
    std::filesystem::create_directories(ckpts.dir);
    CheckpointStore &store = CheckpointStore::global();
    const std::string fp = "doctored-image-test";
    const std::string path = store.pathFor(fp);

    // A genuine page-granular image, published the way the store
    // writes them.
    PhysMemory mem(8 * snapshotPageBytes);
    mem.write64(0, 0x1234);
    mem.write64(5 * snapshotPageBytes, 0x5678);
    Checkpoint cp;
    mem.serializeState("mem.", cp);
    cp.setString("meta.fingerprint", fp);
    cp.saveToFile(path);

    bool claimed = false;
    ASSERT_NE(store.acquire(fp, &claimed), nullptr)
        << "the intact checkpoint must load";

    // Doctor the on-disk page count far beyond the recorded memory
    // and drop the in-memory cache so acquire() re-reads the file.
    Checkpoint evil = Checkpoint::loadFromFile(path);
    evil.setScalar("mem.pages", uint64_t(1) << 20);
    evil.saveToFile(path);
    CheckpointStore::global().resetForTest(ckpts.dir);

    claimed = false;
    EXPECT_EQ(store.acquire(fp, &claimed), nullptr)
        << "a doctored memory image was served";
    EXPECT_TRUE(claimed);
    store.release(fp);

    // Same for a table that indexes outside the unique-page pool.
    Checkpoint evil2 = Checkpoint::loadFromFile(path);
    std::vector<uint8_t> table = evil2.getBlob("mem.table");
    ASSERT_GE(table.size(), 16u);
    table[8] = 0xff; // first mapping's unique-page id
    evil2.setBlob("mem.table", std::move(table));
    evil2.setScalar("mem.pages", 2); // restore a sane page count
    evil2.saveToFile(path);
    CheckpointStore::global().resetForTest(ckpts.dir);

    claimed = false;
    EXPECT_EQ(store.acquire(fp, &claimed), nullptr);
    EXPECT_TRUE(claimed);
    store.release(fp);
}

TEST(CheckpointAtomicityTest, ConcurrentWritersNeverTearTheFile)
{
    // Several threads repeatedly save DIFFERENT checkpoints to the
    // same path while a reader polls it: every successful load must be
    // exactly one writer's complete content. With a fixed temporary
    // sibling name (the pre-fix behaviour) concurrent writers
    // interleave their bytes in the shared temp file and a mixed or
    // torn checkpoint can be renamed into place.
    TempCheckpointDir ckpts("ckpt_atomic_stress");
    std::filesystem::create_directories(ckpts.dir);
    const std::string path = ckpts.dir + "/contended.ckpt";
    constexpr unsigned kWriters = 4;
    constexpr unsigned kRounds = 40;

    std::vector<Checkpoint> contents(kWriters);
    for (unsigned w = 0; w < kWriters; ++w) {
        contents[w].setScalar("writer", w);
        contents[w].setBlob(
            "payload", std::vector<uint8_t>(64 * 1024, uint8_t(w + 1)));
    }

    std::atomic<bool> done{false};
    std::atomic<unsigned> torn{0};
    std::atomic<unsigned> loads{0};
    std::thread reader([&] {
        while (!done.load()) {
            std::optional<Checkpoint> cp = Checkpoint::tryLoadFromFile(path);
            if (!cp.has_value())
                continue; // not yet written; never torn (see below)
            ++loads;
            const uint64_t w = cp->getScalar("writer");
            const std::vector<uint8_t> &payload = cp->getBlob("payload");
            bool consistent = w < kWriters &&
                              payload.size() == 64 * 1024;
            for (size_t i = 0; consistent && i < payload.size(); ++i)
                consistent = payload[i] == uint8_t(w + 1);
            if (!consistent)
                ++torn;
        }
    });

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (unsigned r = 0; r < kRounds; ++r)
                contents[w].saveToFile(path);
        });
    }
    for (std::thread &t : writers)
        t.join();
    done = true;
    reader.join();

    EXPECT_EQ(torn.load(), 0u)
        << "a reader observed a torn/mixed checkpoint";
    EXPECT_GT(loads.load(), 0u) << "the reader never saw the file";

    // The final file is intact and is one writer's exact content.
    std::optional<Checkpoint> last = Checkpoint::tryLoadFromFile(path);
    ASSERT_TRUE(last.has_value());
    EXPECT_LT(last->getScalar("writer"), kWriters);

    // No temporary siblings left behind.
    unsigned files = 0;
    for (const auto &e : std::filesystem::directory_iterator(ckpts.dir))
        files += e.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 1u) << "stray temp files left beside the checkpoint";
}

TEST(ResultCacheRobustnessTest, TruncatedCsvLosesOnlyAffectedRows)
{
    TempCheckpointDir ckpts("ckpt_csv_robust");
    const ClusterConfig cfg = standaloneConfig(IsaId::Riscv);
    const FunctionSpec good = specFor("fibonacci-go");
    const FunctionSpec bad = specFor("aes-go");

    const std::string file = "ckpt_csv_truncated.csv";
    std::remove(file.c_str());

    // Build one genuine row to copy the exact on-disk shape from.
    {
        ResultCache cache(file);
        ASSERT_TRUE(
            cache.detailed(cfg, good, workloads::workloadImpl(good.workload))
                .ok);
    }
    std::string contents = slurp(file);
    ASSERT_FALSE(contents.empty());

    // Forge a second row for 'bad' and truncate it inside the warm
    // block — everything through "ok=1" survives, so the pre-fix
    // loader would have accepted it as a complete result.
    std::string forged = contents;
    const std::string goodName = "," + good.name + ",";
    const size_t at = forged.find(goodName);
    ASSERT_NE(at, std::string::npos);
    forged.replace(at, goodName.size(), "," + bad.name + ",");
    const size_t warmAt = forged.find("|warm.insts=");
    ASSERT_NE(warmAt, std::string::npos);
    forged.resize(warmAt + 7); // cut mid-field-name
    {
        std::ofstream os(file, std::ios::binary | std::ios::app);
        os << "not-a-row-at-all\n";  // junk line
        os << forged;                // truncated row, no newline
    }

    ResultCache reloaded(file);
    FunctionResult out;
    EXPECT_TRUE(reloaded.lookupDetailed(cfg, good, out))
        << "intact row was lost";
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(reloaded.lookupDetailed(cfg, bad, out))
        << "truncated row was served as a complete result";
    std::remove(file.c_str());
}
