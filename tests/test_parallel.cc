/**
 * @file
 * The parallel experiment scheduler's determinism contract: a sweep
 * run with SVBENCH_JOBS=4 must produce byte-identical results and an
 * identical CSV cache to a serial run, and concurrent ResultCache
 * access must never duplicate a simulation or tear a row.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/parallel.hh"
#include "workloads/workloads.hh"

using namespace svb;

namespace
{

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

ClusterConfig
config(IsaId isa)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = false;
    cfg.startMemcached = false;
    return cfg;
}

std::vector<SweepJob>
smallJobList()
{
    // Two functions x two ISAs: enough jobs to occupy four workers.
    std::vector<SweepJob> jobs;
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (const char *fn : {"fibonacci-go", "aes-go"}) {
            const FunctionSpec spec = specFor(fn);
            jobs.push_back({config(isa), spec,
                            &workloads::workloadImpl(spec.workload)});
        }
    }
    return jobs;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** RAII cache backing file that never collides with the shared one. */
struct TempCacheFile
{
    explicit TempCacheFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~TempCacheFile() { std::remove(path.c_str()); }
    std::string path;
};

void
expectSameResult(const FunctionResult &a, const FunctionResult &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.ok, b.ok);
    for (auto field : {&RequestStats::cycles, &RequestStats::insts,
                       &RequestStats::uops, &RequestStats::l1iMisses,
                       &RequestStats::l1dMisses, &RequestStats::l2Misses,
                       &RequestStats::branches,
                       &RequestStats::branchMispredicts,
                       &RequestStats::itlbMisses,
                       &RequestStats::dtlbMisses}) {
        EXPECT_EQ(a.cold.*field, b.cold.*field);
        EXPECT_EQ(a.warm.*field, b.warm.*field);
    }
}

} // namespace

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
    // The pool stays usable after wait().
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 101);
}

TEST(ThreadPool, DefaultJobsHonoursEnvVar)
{
    setenv("SVBENCH_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
    unsetenv("SVBENCH_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ParallelSweep, MatchesSerialResultsAndCacheBytes)
{
    const auto jobs = smallJobList();

    // Reference: the legacy strictly-serial path (direct detailed()
    // calls on a single thread).
    TempCacheFile serial_file("test_parallel_serial.csv");
    std::vector<FunctionResult> serial;
    {
        ResultCache cache(serial_file.path);
        for (const SweepJob &job : jobs)
            serial.push_back(cache.detailed(job.cfg, job.spec, *job.impl));
    }

    // Same sweep through the scheduler with four workers.
    TempCacheFile par_file("test_parallel_jobs4.csv");
    std::vector<FunctionResult> parallel;
    {
        ResultCache cache(par_file.path);
        parallel = parallelSweep(cache, jobs, 4);
    }

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        expectSameResult(serial[i], parallel[i]);

    const std::string serial_csv = slurp(serial_file.path);
    EXPECT_FALSE(serial_csv.empty());
    EXPECT_EQ(serial_csv, slurp(par_file.path));
}

TEST(ParallelSweep, SecondRunIsAllCacheHits)
{
    const auto jobs = smallJobList();
    TempCacheFile file("test_parallel_rerun.csv");
    ResultCache cache(file.path);
    const auto first = parallelSweep(cache, jobs, 2);
    const std::string csv_after_first = slurp(file.path);
    const auto second = parallelSweep(cache, jobs, 2);
    // No re-measurement: the CSV did not grow.
    EXPECT_EQ(csv_after_first, slurp(file.path));
    for (size_t i = 0; i < first.size(); ++i)
        expectSameResult(first[i], second[i]);
}

TEST(ParallelSweep, DuplicateJobsSimulateOnce)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
    const std::vector<SweepJob> jobs(4,
                                     {config(IsaId::Riscv), spec, &impl});

    TempCacheFile file("test_parallel_dup.csv");
    ResultCache cache(file.path);
    const auto results = parallelSweep(cache, jobs, 4);

    std::istringstream is(slurp(file.path));
    std::string line;
    size_t rows = 0;
    while (std::getline(is, line))
        ++rows;
    EXPECT_EQ(rows, 1u);
    for (size_t i = 1; i < results.size(); ++i)
        expectSameResult(results[0], results[i]);
}

TEST(ResultCache, ConcurrentDetailedRunsKeyOnce)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
    const ClusterConfig cfg = config(IsaId::Riscv);

    TempCacheFile file("test_parallel_racing.csv");
    ResultCache cache(file.path);

    std::vector<FunctionResult> results(4);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < results.size(); ++t) {
        threads.emplace_back([&, t] {
            results[t] = cache.detailed(cfg, spec, impl);
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (const FunctionResult &res : results) {
        EXPECT_TRUE(res.ok);
        expectSameResult(results[0], res);
    }

    // Exactly one row, not torn: it parses and carries every field a
    // serial run writes (20 cold + 20 warm stats — 10 counters plus
    // 10 stall causes each — + ok + schema version).
    std::istringstream is(slurp(file.path));
    std::string line, extra;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_FALSE(std::getline(is, extra));
    size_t fields = 0;
    std::istringstream ls(line);
    std::string tok;
    ASSERT_TRUE(std::getline(ls, tok, '|')); // the key
    EXPECT_NE(tok.find("fibonacci-go"), std::string::npos);
    while (std::getline(ls, tok, '|')) {
        EXPECT_NE(tok.find('='), std::string::npos) << tok;
        ++fields;
    }
    EXPECT_EQ(fields, 42u);
}
