/**
 * @file
 * Design-space feature tests: branch-predictor organisations and the
 * next-line prefetcher.
 */

#include <gtest/gtest.h>

#include "cpu/branch_pred.hh"
#include "mem/hierarchy.hh"

using namespace svb;

namespace
{

StaticInst
condBranch(int64_t offset)
{
    StaticInst inst;
    inst.valid = true;
    inst.length = 4;
    inst.isControl = true;
    inst.isCondCtrl = true;
    inst.isDirectCtrl = true;
    inst.directOffset = offset;
    return inst;
}

/** Mispredicts of a predictor on an alternating T/N branch stream. */
int
mispredictsOnAlternating(BpKind kind)
{
    StatGroup stats("t");
    BranchPredParams params;
    params.kind = kind;
    BranchPredictor bp(params, stats);
    const StaticInst inst = condBranch(-16);
    const Addr pc = 0x4000;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        const bool taken = (i % 2) == 0;
        const auto pred = bp.predict(pc, inst, pc + 4);
        wrong += pred.taken != taken;
        bp.update(pc, inst, taken, taken ? pc - 16 : pc + 4);
    }
    return wrong;
}

} // namespace

TEST(BpKinds, HistoryPredictorsLearnAlternation)
{
    // A strict T/N/T/N pattern defeats bimodal but is trivially
    // history-predictable: gshare and tournament must crush it.
    const int bimodal = mispredictsOnAlternating(BpKind::Bimodal);
    const int gshare = mispredictsOnAlternating(BpKind::GShare);
    const int tournament = mispredictsOnAlternating(BpKind::Tournament);
    EXPECT_GT(bimodal, 150);
    EXPECT_LT(gshare, 40);
    EXPECT_LT(tournament, 60);
}

TEST(BpKinds, AllKindsLearnABias)
{
    for (BpKind kind :
         {BpKind::Bimodal, BpKind::GShare, BpKind::Tournament}) {
        StatGroup stats("t");
        BranchPredParams params;
        params.kind = kind;
        BranchPredictor bp(params, stats);
        const StaticInst inst = condBranch(-16);
        int wrong = 0;
        for (int i = 0; i < 200; ++i) {
            const auto pred = bp.predict(0x5000, inst, 0x5004);
            wrong += !pred.taken;
            bp.update(0x5000, inst, true, 0x4ff0);
        }
        EXPECT_LT(wrong, 20) << bpKindName(kind);
    }
}

namespace
{

class CountingBackend : public MemLevel
{
  public:
    Cycles access(Addr addr, bool, Cycles) override
    {
        fetched.push_back(addr);
        return 50;
    }
    void warm(Addr, bool) override {}
    std::vector<Addr> fetched;
};

} // namespace

TEST(Prefetch, NextLineFillsOnMiss)
{
    StatGroup stats("t");
    CountingBackend backend;
    CacheParams params{"pf", 4096, 4, 64, 1};
    params.nextLinePrefetch = true;
    Cache c(params, backend, stats);

    c.access(0x1000, false, 0);
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x1040)); // prefetched
    ASSERT_EQ(backend.fetched.size(), 2u);
    EXPECT_EQ(backend.fetched[1], 0x1040u);

    // A sequential walk now hits every other line.
    const Cycles hit = c.access(0x1040, false, 1);
    EXPECT_EQ(hit, 1u);
}

TEST(Prefetch, SequentialStreamHalvesDemandMisses)
{
    StatGroup stats("t");
    CountingBackend backend;
    CacheParams off_params{"off", 8192, 4, 64, 1};
    Cache off(off_params, backend, stats);
    CacheParams on_params{"on", 8192, 4, 64, 1};
    on_params.nextLinePrefetch = true;
    Cache on(on_params, backend, stats);

    for (Addr a = 0; a < 64 * 64; a += 64) {
        off.access(a, false, a);
        on.access(a, false, a);
    }
    EXPECT_EQ(off.misses(), 64u);
    EXPECT_LE(on.misses(), 33u); // every other line was prefetched
}

TEST(Prefetch, DisabledByDefault)
{
    StatGroup stats("t");
    CountingBackend backend;
    Cache c(CacheParams{"c", 4096, 4, 64, 1}, backend, stats);
    c.access(0x2000, false, 0);
    EXPECT_FALSE(c.contains(0x2040));
}
