/**
 * @file
 * Serverless-stack tests: tier calibration invariants, server/client
 * program construction for every tier and ISA, the container image
 * registry model, and report formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"
#include "stack/image.hh"
#include "stack/runtime.hh"
#include "workloads/workloads.hh"

using namespace svb;

TEST(Calibration, TierNames)
{
    EXPECT_STREQ(tierName(RuntimeTier::Go), "go");
    EXPECT_STREQ(tierName(RuntimeTier::Node), "nodejs");
    EXPECT_STREQ(tierName(RuntimeTier::Python), "python");
}

TEST(Calibration, Cx86StackIsHeavierEverywhere)
{
    for (RuntimeTier tier :
         {RuntimeTier::Go, RuntimeTier::Node, RuntimeTier::Python}) {
        const TierParams rv = tierParams(tier, IsaId::Riscv);
        const TierParams cx = tierParams(tier, IsaId::Cx86);
        EXPECT_GT(cx.wrapperLayers, rv.wrapperLayers) << tierName(tier);
        EXPECT_GT(cx.initLayers, rv.initLayers) << tierName(tier);
        EXPECT_GT(cx.preMainTouchBytes, rv.preMainTouchBytes)
            << tierName(tier);
    }
}

TEST(Calibration, PythonImportsDominate)
{
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        const TierParams go = tierParams(RuntimeTier::Go, isa);
        const TierParams py = tierParams(RuntimeTier::Python, isa);
        EXPECT_GT(py.initLayers * py.initSlabBytes,
                  3 * go.initLayers * go.initSlabBytes);
    }
}

TEST(Calibration, SteadyStateExceedsL2)
{
    // The per-request working set must exceed the 512 KiB L2 so warm
    // requests keep missing, as the paper's do.
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (RuntimeTier tier :
             {RuntimeTier::Go, RuntimeTier::Node, RuntimeTier::Python}) {
            const TierParams p = tierParams(tier, isa);
            EXPECT_GT(p.wrapperLayers * p.wrapperSlabBytes,
                      uint64_t(128 * 1024))
                << tierName(tier);
        }
    }
}

class BuildAllServersTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BuildAllServersTest, ProgramsCompileAndCarrySymbols)
{
    const auto [fn_idx, isa_idx] = GetParam();
    const auto specs = workloads::allFunctions();
    ASSERT_LT(size_t(fn_idx), specs.size());
    const FunctionSpec &spec = specs[size_t(fn_idx)];
    const IsaId isa = isa_idx == 0 ? IsaId::Riscv : IsaId::Cx86;

    const LoadableImage server = buildServerProgram(
        spec, workloads::workloadImpl(spec.workload), isa);
    EXPECT_GT(server.code.size(), 4096u) << spec.name;
    EXPECT_GT(server.heapBytes, 1024u * 1024u) << spec.name;
    EXPECT_EQ(server.symbolAt(0), "_start");
    bool has_serve_loop = false;
    for (const auto &[name, off] : server.symbols)
        has_serve_loop |= name == "server.main";
    EXPECT_TRUE(has_serve_loop) << spec.name;

    const LoadableImage client = buildClientProgram(
        spec, workloads::workloadImpl(spec.workload), isa);
    EXPECT_GT(client.code.size(), 256u) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctionsBothIsas, BuildAllServersTest,
    ::testing::Combine(::testing::Range(0, 21), ::testing::Values(0, 1)));

TEST(ImageModel, ReproducesTable44Totals)
{
    // Spot-check against the paper's Table 4.4 cells.
    auto total = [](const char *name, IsaId isa) {
        for (const FunctionSpec &spec : workloads::allFunctions()) {
            if (spec.name == name) {
                return containerImage(spec, isa, RegistryProfile::GPour)
                    ->totalMb();
            }
        }
        return -1.0;
    };
    EXPECT_NEAR(total("fibonacci-go", IsaId::Cx86), 8.39, 0.01);
    EXPECT_NEAR(total("fibonacci-go", IsaId::Riscv), 7.76, 0.01);
    EXPECT_NEAR(total("fibonacci-python", IsaId::Riscv), 132.62, 0.01);
    EXPECT_NEAR(total("auth-nodejs", IsaId::Cx86), 70.50, 0.01);
    EXPECT_NEAR(total("payment-nodejs", IsaId::Riscv), 80.64, 0.01);
    EXPECT_NEAR(total("profile", IsaId::Riscv), 7.79, 0.01);
}

TEST(ImageModel, OrderingInvariants)
{
    // Go < NodeJS < Python within each ISA (Section 4.2.5).
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        double go = 0, node = 0, py = 0;
        for (const FunctionSpec &spec : workloads::standaloneSuite()) {
            if (spec.workload != "fibonacci")
                continue;
            const double mb =
                containerImage(spec, isa, RegistryProfile::GPour)
                    ->totalMb();
            if (spec.tier == RuntimeTier::Go)
                go = mb;
            else if (spec.tier == RuntimeTier::Node)
                node = mb;
            else
                py = mb;
        }
        EXPECT_LT(go, node);
        EXPECT_LT(node, py);
    }
}

TEST(ImageModel, NatheesanProfileGaps)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        const auto img =
            containerImage(spec, IsaId::Riscv, RegistryProfile::Natheesan);
        if (spec.usesDb) {
            EXPECT_FALSE(img.has_value()) << spec.name
                                          << ": hotel needs MongoDB";
        } else {
            ASSERT_TRUE(img.has_value()) << spec.name;
            EXPECT_GT(img->totalMb(), 1.0);
        }
        // No x86 images in the Natheesan registry at all.
        EXPECT_FALSE(containerImage(spec, IsaId::Cx86,
                                    RegistryProfile::Natheesan)
                         .has_value());
    }
}

TEST(ImageModel, BreakdownSumsToTotal)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
            const auto img =
                containerImage(spec, isa, RegistryProfile::GPour);
            ASSERT_TRUE(img.has_value());
            EXPECT_GE(img->appMb, 0.0) << spec.name;
            EXPECT_GT(img->baseOsMb, 0.0) << spec.name;
            EXPECT_NEAR(img->totalMb(), img->baseOsMb + img->runtimeMb +
                                            img->libsMb + img->appMb,
                        1e-9);
        }
    }
}

TEST(Report, FiguresPrintWithoutCrashing)
{
    // Smoke-test the printers (they write to stdout).
    report::figureHeader("Figure T", "test caption",
                         {SystemConfig::paperConfig(IsaId::Riscv)});
    report::barFigure({{"a", "cycles"}, {"b", "cycles"}},
                      {{"row1", {100, 50}}, {"row2", {30, 20}}});
    const std::vector<report::SeriesSpec> id_series = {{"i", ""}, {"d", ""}};
    report::stackedPercentFigure(id_series, {{"row", {30, 70}}});
    report::table({"Function", "x86"}, {{"fib", {8.39}}});
    report::configTables(SystemConfig::paperConfig(IsaId::Riscv),
                         SystemConfig::paperConfig(IsaId::Cx86));
    SUCCEED();
}
