/**
 * @file
 * The fleet layer's contracts:
 *  - the cluster scheduler's routing policies produce the documented
 *    placements on a hand-built 3-node fleet, and draw no randomness
 *    when only one node is routable;
 *  - the reactive autoscaler's desired-node arithmetic, scale-up lag
 *    and idle retirement behave as specified, and an engine-level
 *    burst actually scales a fleet out;
 *  - node crashes conserve invocations (succeeded + failed + sheds ==
 *    invocations) while converting in-flight attempts;
 *  - fleet sweeps are byte-identical (stdout summary fields, CSV rows
 *    and histogram fingerprints) at any SVBENCH_JOBS value, and a
 *    single-node fleet reproduces the pre-fleet engine exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/checkpoint_store.hh"
#include "load/load_runner.hh"
#include "load/names.hh"
#include "workloads/workloads.hh"

using namespace svb;
using namespace svb::load;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

struct TempCacheFile
{
    explicit TempCacheFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~TempCacheFile() { std::remove(path.c_str()); }
    std::string path;
};

struct TempCheckpointDir
{
    explicit TempCheckpointDir(std::string d) : dir(std::move(d))
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    ~TempCheckpointDir()
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    std::string dir;
};

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

ClusterConfig
standaloneConfig(IsaId isa)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = false;
    cfg.startMemcached = false;
    return cfg;
}

LoadScenario
fleetScenario(const std::string &name, unsigned nodes,
              RoutingPolicy policy)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    LoadScenario s;
    s.name = name;
    s.cluster = standaloneConfig(IsaId::Riscv);
    s.mix = {{spec, &workloads::workloadImpl(spec.workload), 1.0}};
    s.arrival.kind = ArrivalKind::Poisson;
    s.arrival.ratePerSec = 4000.0;
    s.pool.policy = KeepAlivePolicy::FixedTtl;
    s.pool.maxInstances = 2;
    s.pool.keepAliveNs = 20'000'000;
    s.fleet.nodes = nodes;
    s.fleet.routing = policy;
    s.invocations = 400;
    s.seed = 91;
    return s;
}

/** A 3-node fleet with a hand-built backlog profile: node 0 busy the
 *  longest, node 2 idle. The PoolConfig gives each node 2 slots. */
Fleet
backloggedFleet(const FleetConfig &fc)
{
    PoolConfig pc;
    pc.policy = KeepAlivePolicy::FixedTtl;
    pc.maxInstances = 2;
    pc.keepAliveNs = 1'000'000'000;
    Fleet fleet(fc, pc, 4);
    // node 0: both slots busy until t=900/800; node 1: one slot busy
    // until t=300; node 2: idle.
    auto load = [&](unsigned node, uint32_t fn, uint64_t end) {
        auto pl = fleet.pool(node).acquire(fn, 0);
        fleet.onAttemptStart(node, fn, pl.startNs, end);
        fleet.pool(node).release(pl.slot, end);
        fleet.onAttemptEnd(node, fn);
    };
    load(0, 0, 900);
    load(0, 1, 800);
    load(1, 2, 300);
    return fleet;
}

} // namespace

// --------------------------------------------------------------------------
// Routing policy golden placements
// --------------------------------------------------------------------------

TEST(FleetRouting, LeastLoadedPicksTheSmallestBacklog)
{
    FleetConfig fc;
    fc.nodes = 3;
    fc.routing = RoutingPolicy::LeastLoaded;
    Fleet fleet = backloggedFleet(fc);
    Rng rng(7);
    // backlog at t=100: node0 = 800+700, node1 = 200, node2 = 0.
    EXPECT_EQ(fleet.backlogNs(0, 100), 1500u);
    EXPECT_EQ(fleet.backlogNs(1, 100), 200u);
    EXPECT_EQ(fleet.backlogNs(2, 100), 0u);
    const Fleet::Route rt = fleet.route(0, 100, rng);
    EXPECT_EQ(rt.node, 2u);
    EXPECT_FALSE(rt.throttled);
    // No randomness was drawn: the substream is untouched.
    EXPECT_EQ(rng.next(), Rng(7).next());
}

TEST(FleetRouting, LeastLoadedBreaksTiesOnTheLowerIndex)
{
    FleetConfig fc;
    fc.nodes = 3;
    fc.routing = RoutingPolicy::LeastLoaded;
    PoolConfig pc;
    pc.maxInstances = 2;
    Fleet fleet(fc, pc, 1);
    Rng rng(7);
    EXPECT_EQ(fleet.route(0, 0, rng).node, 0u);
}

TEST(FleetRouting, RandomAndP2cFollowTheRoutingSubstream)
{
    // Golden placements: the draw sequence is pinned by Rng(7), so
    // these document (and freeze) the exact candidate-indexing logic.
    FleetConfig fc;
    fc.nodes = 3;
    fc.routing = RoutingPolicy::Random;
    {
        Fleet fleet = backloggedFleet(fc);
        Rng rng(7);
        Rng ref(7);
        const Fleet::Route rt = fleet.route(0, 100, rng);
        EXPECT_EQ(rt.node, ref.nextBounded(3));
    }
    fc.routing = RoutingPolicy::PowerOfTwo;
    {
        Fleet fleet = backloggedFleet(fc);
        Rng rng(7);
        Rng ref(7);
        const unsigned a = unsigned(ref.nextBounded(3));
        const unsigned b = unsigned(ref.nextBounded(3));
        // backlogs at t=100: {1500, 200, 0} — keep the less loaded of
        // the two draws, ties to the lower index.
        const uint64_t loads[] = {1500, 200, 0};
        const unsigned expect = loads[b] < loads[a]
                                    ? b
                                    : loads[a] < loads[b] ? a
                                                          : std::min(a, b);
        const Fleet::Route rt = fleet.route(0, 100, rng);
        EXPECT_EQ(rt.node, expect);
    }
}

TEST(FleetRouting, AffinitySticksToTheHomeNodeAndFallsBack)
{
    FleetConfig fc;
    fc.nodes = 3;
    fc.routing = RoutingPolicy::Affinity;
    PoolConfig pc;
    pc.maxInstances = 2;

    // Each function sticks to one node regardless of backlog...
    std::vector<unsigned> home(4, ~0u);
    {
        Fleet fleet(fc, pc, 4);
        Rng rng(7);
        for (uint32_t fn = 0; fn < 4; ++fn) {
            home[fn] = fleet.route(fn, 0, rng).node;
            EXPECT_EQ(fleet.route(fn, 0, rng).node, home[fn]) << fn;
        }
        // ...and with 4 functions over 3 nodes at least two distinct
        // homes exist (the avalanche hash spreads consecutive ids).
        bool spread = false;
        for (uint32_t fn = 1; fn < 4; ++fn)
            spread = spread || home[fn] != home[0];
        EXPECT_TRUE(spread);
    }

    // When the home node is unroutable, affinity falls back to the
    // least-loaded routable node instead of stalling.
    {
        Fleet fleet(fc, pc, 4);
        Rng rng(7);
        fleet.applyNodeFault(
            {NodeFaultEvent::Kind::Partition, home[0], 0, 1'000});
        const Fleet::Route rt = fleet.route(0, 500, rng);
        EXPECT_NE(rt.node, home[0]);
        EXPECT_NE(rt.node, Fleet::badNode);
        // Past the partition window the home applies again.
        EXPECT_EQ(fleet.route(0, 2'000, rng).node, home[0]);
    }
}

TEST(FleetRouting, ConcurrencyLimitThrottles)
{
    FleetConfig fc;
    fc.nodes = 2;
    fc.fnConcurrencyLimit = 1;
    PoolConfig pc;
    pc.maxInstances = 2;
    Fleet fleet(fc, pc, 2);
    Rng rng(7);

    const Fleet::Route first = fleet.route(0, 0, rng);
    ASSERT_NE(first.node, Fleet::badNode);
    auto pl = fleet.pool(first.node).acquire(0, 0);
    fleet.onAttemptStart(first.node, 0, pl.startNs, 1'000);

    // Function 0 is at its limit; function 1 is not.
    EXPECT_TRUE(fleet.route(0, 10, rng).throttled);
    EXPECT_FALSE(fleet.route(1, 10, rng).throttled);
    EXPECT_EQ(fleet.throttles(), 1u);

    // The limit frees up when the in-flight attempt ends.
    fleet.pool(first.node).release(pl.slot, 1'000);
    fleet.onAttemptEnd(first.node, 0);
    EXPECT_FALSE(fleet.route(0, 2'000, rng).throttled);
}

// --------------------------------------------------------------------------
// Node classes: weighted routing, preferred hints, name round-trips
// --------------------------------------------------------------------------

TEST(FleetClasses, CostAndPowerWeightedPickByWeightAtEqualBacklog)
{
    // A pricey-but-efficient class ahead of a cheap-but-hungry one, so
    // the two weighted argmins pick OPPOSITE nodes — index order alone
    // can't explain either placement.
    NodeClass pricey;
    pricey.name = "pricey";
    pricey.costPerHour = 5.0;
    pricey.watts = 2.0;
    NodeClass cheap;
    cheap.name = "cheap";
    cheap.costPerHour = 1.0;
    cheap.watts = 10.0;

    FleetConfig fc;
    fc.spec.groups = {{pricey, 1}, {cheap, 1}};
    PoolConfig pc;
    pc.maxInstances = 2;

    fc.routing = RoutingPolicy::CostWeighted;
    {
        Fleet fleet(fc, pc, 1);
        Rng rng(7);
        EXPECT_EQ(fleet.route(0, 0, rng).node, 1u); // cheapest $/h
        // Deterministic: the routing substream is untouched.
        EXPECT_EQ(rng.next(), Rng(7).next());
    }
    fc.routing = RoutingPolicy::PowerWeighted;
    {
        Fleet fleet(fc, pc, 1);
        Rng rng(7);
        EXPECT_EQ(fleet.route(0, 0, rng).node, 0u); // fewest watts
        EXPECT_EQ(rng.next(), Rng(7).next());
    }
}

TEST(FleetClasses, WeightedArgminStillYieldsToBacklog)
{
    // The weight scales the backlog, it does not override it: enough
    // queued work on the cheap node sends cost-weighted routing to the
    // expensive idle one (5*(0+1) = 5 < 1*(200+1) = 201).
    NodeClass pricey;
    pricey.name = "pricey";
    pricey.costPerHour = 5.0;
    NodeClass cheap;
    cheap.name = "cheap";
    cheap.costPerHour = 1.0;

    FleetConfig fc;
    fc.routing = RoutingPolicy::CostWeighted;
    fc.spec.groups = {{pricey, 1}, {cheap, 1}};
    PoolConfig pc;
    pc.maxInstances = 2;
    Fleet fleet(fc, pc, 1);

    auto pl = fleet.pool(1).acquire(0, 0);
    fleet.onAttemptStart(1, 0, pl.startNs, 300);
    fleet.pool(1).release(pl.slot, 300);
    fleet.onAttemptEnd(1, 0);

    Rng rng(7);
    EXPECT_EQ(fleet.backlogNs(1, 100), 200u);
    EXPECT_EQ(fleet.route(0, 100, rng).node, 0u);
}

TEST(FleetClasses, SpecDerivesCountsWeightsAndGroups)
{
    NodeClass rv;
    rv.name = "rv";
    rv.watts = 4.0;
    rv.costPerHour = 1.0;
    NodeClass x86;
    x86.name = "x86";
    x86.speedFactor = 2.0;
    x86.watts = 18.0;
    x86.costPerHour = 3.0;

    FleetConfig fc;
    fc.spec.groups = {{rv, 2}, {x86, 3}};
    PoolConfig pc;
    pc.maxInstances = 2;
    Fleet fleet(fc, pc, 1);

    EXPECT_TRUE(fleet.classed());
    EXPECT_EQ(fleet.nodeCount(), 5u);
    EXPECT_EQ(fleet.groupCount(), 2u);
    EXPECT_EQ(fleet.groupOf(1), 0u);
    EXPECT_EQ(fleet.groupOf(2), 1u);
    EXPECT_EQ(fleet.nodeClass(1).name, "x86");
    EXPECT_DOUBLE_EQ(fleet.speedFactor(0), 1.0);
    EXPECT_DOUBLE_EQ(fleet.speedFactor(4), 2.0);
    // 2*4 W + 3*18 W = 62 W; 2*1 $/h + 3*3 $/h = 11 $/h.
    EXPECT_EQ(fleet.fleetPowerMw(), 62'000u);
    EXPECT_EQ(fleet.fleetCostMilli(), 11'000u);
    // A class-less fleet is one synthetic group at 1 W / 1 $/h a node.
    FleetConfig legacy;
    legacy.nodes = 3;
    Fleet plain(legacy, pc, 1);
    EXPECT_FALSE(plain.classed());
    EXPECT_EQ(plain.groupCount(), 1u);
    EXPECT_EQ(plain.fleetPowerMw(), 3'000u);
    EXPECT_EQ(plain.fleetCostMilli(), 3'000u);
}

TEST(FleetClasses, PreferredHintHitsAndMissesAreCounted)
{
    FleetConfig fc;
    fc.nodes = 3;
    fc.routing = RoutingPolicy::LeastLoaded;
    Fleet fleet = backloggedFleet(fc);
    Rng rng(7);

    // A routable hint short-circuits the policy: node 0 carries the
    // largest backlog, yet the hint wins — and counts as a hit.
    const Fleet::Route hit = fleet.route(0, 100, rng, 0);
    EXPECT_EQ(hit.node, 0u);
    EXPECT_EQ(fleet.preferredHits(), 1u);
    EXPECT_EQ(fleet.preferredMisses(), 0u);

    // An unroutable hint falls back to the policy and counts a miss.
    fleet.applyNodeFault({NodeFaultEvent::Kind::Partition, 0, 100, 1'000});
    const Fleet::Route miss = fleet.route(0, 200, rng, 0);
    EXPECT_EQ(miss.node, 2u); // least loaded of the survivors
    EXPECT_EQ(fleet.preferredHits(), 1u);
    EXPECT_EQ(fleet.preferredMisses(), 1u);
    // No hint, no counting.
    fleet.route(0, 200, rng);
    EXPECT_EQ(fleet.preferredHits(), 1u);
    EXPECT_EQ(fleet.preferredMisses(), 1u);
}

TEST(FleetClasses, ClassTagsNamespaceCalibrationAndCheckpoints)
{
    const ClusterConfig base = standaloneConfig(IsaId::Riscv);

    // A class without its own system calibrates on the scenario's
    // base cluster — no extra boots, no new cache keys.
    NodeClass shared;
    shared.name = "shared";
    const ClusterConfig same = classCluster(shared, base);
    EXPECT_TRUE(same.classTag.empty());
    EXPECT_EQ(same.system.isa, base.system.isa);

    // A class owning its system gets a class-tagged cluster so its
    // calibration rows and checkpoints can't collide with the base's.
    NodeClass own = NodeClass::forIsa("edge", IsaId::Cx86);
    own.system.clockMHz = 2000;
    const ClusterConfig tagged = classCluster(own, base);
    EXPECT_EQ(tagged.classTag, "edge");
    EXPECT_EQ(tagged.system.isa, IsaId::Cx86);
    EXPECT_EQ(tagged.system.clockMHz, 2000u);

    const FunctionSpec spec = specFor("fibonacci-go");
    const std::string fpBase = CheckpointStore::fingerprint(base, spec);
    const std::string fpTagged =
        CheckpointStore::fingerprint(tagged, spec);
    EXPECT_NE(fpBase, fpTagged);
    EXPECT_EQ(fpBase.find(";class="), std::string::npos);
    EXPECT_NE(fpTagged.find(";class=edge"), std::string::npos);

    // One calibration cluster per group, in group order.
    FleetConfig fc;
    fc.spec.groups = {{shared, 2}, {own, 1}};
    const std::vector<ClusterConfig> clusters =
        calibrationClusters(base, fc);
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_TRUE(clusters[0].classTag.empty());
    EXPECT_EQ(clusters[1].classTag, "edge");
    // The legacy scalar fleet calibrates exactly the base cluster.
    FleetConfig legacy;
    legacy.nodes = 4;
    EXPECT_EQ(calibrationClusters(base, legacy).size(), 1u);
}

TEST(FleetClasses, NameRoundTripsParseBothDirections)
{
    for (unsigned v = 0; v < 6; ++v) {
        const RoutingPolicy pol = RoutingPolicy(v);
        RoutingPolicy out;
        ASSERT_TRUE(parseRoutingPolicy(routingPolicyName(pol), out));
        EXPECT_EQ(out, pol);
    }
    for (unsigned v = 0; v < 4; ++v) {
        const KeepAlivePolicy pol = KeepAlivePolicy(v);
        KeepAlivePolicy out;
        ASSERT_TRUE(parseKeepAlivePolicy(keepAlivePolicyName(pol), out));
        EXPECT_EQ(out, pol);
    }
    for (unsigned v = 0; v < 3; ++v) {
        const ArrivalKind kind = ArrivalKind(v);
        ArrivalKind out;
        ASSERT_TRUE(parseArrivalKind(arrivalKindName(kind), out));
        EXPECT_EQ(out, kind);
    }
    for (unsigned v = 0; v < 2; ++v) {
        const NodeFaultEvent::Kind kind = NodeFaultEvent::Kind(v);
        NodeFaultEvent::Kind out;
        ASSERT_TRUE(parseNodeFaultKind(nodeFaultKindName(kind), out));
        EXPECT_EQ(out, kind);
    }
    for (unsigned v = 0; v < 2; ++v) {
        const StagePlacement placement = StagePlacement(v);
        StagePlacement out;
        ASSERT_TRUE(parseStagePlacement(stagePlacementName(placement),
                                        out));
        EXPECT_EQ(out, placement);
    }
    RoutingPolicy out;
    EXPECT_FALSE(parseRoutingPolicy("no-such-policy", out));
}

// --------------------------------------------------------------------------
// Autoscaler
// --------------------------------------------------------------------------

TEST(Autoscaler, DesiredNodeArithmetic)
{
    AutoscalerConfig cfg;
    cfg.enabled = true;
    cfg.minNodes = 1;
    cfg.maxNodes = 4;
    cfg.targetInFlightPerNode = 2.0;
    Autoscaler scaler(cfg, 8);

    EXPECT_EQ(scaler.desiredFor(0), 1u);  // floor
    EXPECT_EQ(scaler.desiredFor(1), 1u);  // ceil(1/2) = 1
    EXPECT_EQ(scaler.desiredFor(2), 1u);
    EXPECT_EQ(scaler.desiredFor(3), 2u);  // ceil(3/2) = 2
    EXPECT_EQ(scaler.desiredFor(7), 4u);
    EXPECT_EQ(scaler.desiredFor(100), 4u); // ceiling clamps
}

TEST(Autoscaler, ScaleToZeroFloor)
{
    AutoscalerConfig cfg;
    cfg.enabled = true;
    cfg.minNodes = 0;
    cfg.targetInFlightPerNode = 1.0;
    Autoscaler scaler(cfg, 3);
    EXPECT_EQ(scaler.desiredFor(0), 0u);
    EXPECT_EQ(scaler.desiredFor(1), 1u);
    EXPECT_EQ(scaler.desiredFor(9), 3u); // maxNodes defaults to fleet
}

TEST(Autoscaler, EvaluationBoundariesAreFixedPeriods)
{
    AutoscalerConfig cfg;
    cfg.enabled = true;
    cfg.evalPeriodNs = 100;
    Autoscaler scaler(cfg, 2);
    EXPECT_FALSE(scaler.due(99));
    EXPECT_TRUE(scaler.due(100));
    EXPECT_EQ(scaler.nextEvalNs(), 100u);
    scaler.evaluate(0);
    EXPECT_EQ(scaler.nextEvalNs(), 200u);
    EXPECT_FALSE(scaler.due(150));
    EXPECT_TRUE(scaler.due(350));
    EXPECT_EQ(scaler.evaluations(), 1u);
}

TEST(Autoscaler, FleetScaleUpPaysTheLagAndScaleDownRetires)
{
    FleetConfig fc;
    fc.nodes = 3;
    fc.autoscaler.enabled = true;
    fc.autoscaler.minNodes = 1;
    fc.autoscaler.evalPeriodNs = 1'000;
    fc.autoscaler.targetInFlightPerNode = 1.0;
    fc.autoscaler.scaleUpLagNs = 500;
    fc.autoscaler.scaleDownIdleNs = 2'000;
    PoolConfig pc;
    pc.maxInstances = 2;
    Fleet fleet(fc, pc, 1);
    Rng rng(7);

    // Only the floor is active initially.
    EXPECT_EQ(fleet.activeNodes(), 1u);

    // Three in-flight attempts at the first evaluation boundary want
    // three nodes; the new ones are routable only after the lag.
    for (int i = 0; i < 3; ++i)
        fleet.onAttemptStart(0, 0, 0, 10'000);
    const Fleet::Route rt = fleet.route(0, 1'000, rng);
    EXPECT_EQ(fleet.activeNodes(), 3u);
    EXPECT_EQ(rt.node, 0u); // the others are still in their lag window
    EXPECT_TRUE(fleet.routable(1, 1'500));
    EXPECT_EQ(fleet.maxActiveNodes(), 3u);
    EXPECT_EQ(fleet.activations(), 2u);

    // Load drains; after the idle threshold the extra nodes retire.
    for (int i = 0; i < 3; ++i)
        fleet.onAttemptEnd(0, 0);
    fleet.route(0, 20'000, rng);
    EXPECT_EQ(fleet.activeNodes(), 1u);
    EXPECT_EQ(fleet.deactivations(), 2u);
    // The peak is sticky: it reports the high-water mark.
    EXPECT_EQ(fleet.maxActiveNodes(), 3u);
}

TEST(Autoscaler, EngineScalesOutUnderBurstLoad)
{
    TempCheckpointDir ckpts("ckpt_fleet_burst");
    TempCacheFile file("test_fleet_burst.csv");

    LoadScenario s = fleetScenario("t-fleet-burst", 4,
                                   RoutingPolicy::LeastLoaded);
    s.arrival.kind = ArrivalKind::Burst;
    s.arrival.ratePerSec = 8000.0;
    s.arrival.burstFactor = 8.0;
    s.arrival.burstPeriodNs = 10'000'000;
    s.arrival.burstDuty = 0.1;
    s.invocations = 800;
    s.fleet.autoscaler.enabled = true;
    s.fleet.autoscaler.minNodes = 1;
    s.fleet.autoscaler.evalPeriodNs = 2'000'000;
    s.fleet.autoscaler.targetInFlightPerNode = 1.0;
    s.fleet.autoscaler.scaleUpLagNs = 1'000'000;
    s.fleet.autoscaler.scaleDownIdleNs = 10'000'000;

    ResultCache cache(file.path);
    const LoadResult res = LoadRunner(cache).run(s);
    ASSERT_TRUE(res.ok);
    EXPECT_GT(res.maxActiveNodes, 1u);
    EXPECT_LE(res.maxActiveNodes, 4u);
    EXPECT_EQ(res.succeeded + res.failedInvocations + res.sheds,
              res.invocations);
}

// --------------------------------------------------------------------------
// Node faults and the conservation invariant
// --------------------------------------------------------------------------

TEST(NodeFaults, CrashConservesInvocationsAndConvertsInFlight)
{
    TempCheckpointDir ckpts("ckpt_fleet_crash");
    TempCacheFile file("test_fleet_crash.csv");

    // High rate so attempts are in flight at the crash instants; two
    // crashes and a partition stress the route-around path. Retries
    // recover most conversions, the rest count as failed.
    LoadScenario s = fleetScenario("t-fleet-crash", 3,
                                   RoutingPolicy::LeastLoaded);
    s.arrival.ratePerSec = 20'000.0;
    s.invocations = 600;
    s.retry.maxAttempts = 3;
    s.retry.backoffBaseNs = 100'000;
    s.retry.backoffCapNs = 1'000'000;
    s.fleet.nodeFaults.push_back(
        {NodeFaultEvent::Kind::Crash, 0, 5'000'000, 5'000'000});
    s.fleet.nodeFaults.push_back(
        {NodeFaultEvent::Kind::Crash, 1, 10'000'000, 5'000'000});
    s.fleet.nodeFaults.push_back(
        {NodeFaultEvent::Kind::Partition, 2, 10'000'000, 2'000'000});

    ResultCache cache(file.path);
    const LoadResult res = LoadRunner(cache).run(s);
    ASSERT_TRUE(res.ok);

    // Conservation: every invocation ends exactly one way, and every
    // client-visible completion landed in the latency histogram.
    EXPECT_EQ(res.succeeded + res.failedInvocations + res.sheds,
              res.invocations);
    EXPECT_EQ(res.latency.count(), res.invocations);
    EXPECT_EQ(res.nodeFaults, 3u);
    // The crashes really converted in-flight attempts.
    EXPECT_GT(res.crashes, 0u);
    EXPECT_GT(res.retries, 0u);
}

TEST(NodeFaults, SingleNodeFleetDefersDuringTheDownWindow)
{
    TempCheckpointDir ckpts("ckpt_fleet_defer");
    TempCacheFile file("test_fleet_defer.csv");

    // With one node and a partition window, arrivals inside the
    // window defer until it closes instead of being dropped.
    LoadScenario s = fleetScenario("t-fleet-defer", 1,
                                   RoutingPolicy::LeastLoaded);
    s.invocations = 200;
    s.fleet.nodeFaults.push_back(
        {NodeFaultEvent::Kind::Partition, 0, 10'000'000, 10'000'000});

    ResultCache cache(file.path);
    const LoadResult res = LoadRunner(cache).run(s);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.succeeded + res.failedInvocations + res.sheds,
              res.invocations);
    EXPECT_EQ(res.latency.count(), res.invocations);
    EXPECT_EQ(res.succeeded, res.invocations); // nothing is lost
    EXPECT_EQ(res.nodeFaults, 1u);
}

// --------------------------------------------------------------------------
// Determinism across worker counts, and the single-node identity
// --------------------------------------------------------------------------

TEST(FleetSweep, ByteIdenticalAcrossWorkerCounts)
{
    TempCheckpointDir ckpts("ckpt_fleet_sweep");

    std::vector<LoadScenario> scenarios;
    for (RoutingPolicy pol :
         {RoutingPolicy::LeastLoaded, RoutingPolicy::PowerOfTwo,
          RoutingPolicy::Random, RoutingPolicy::Affinity}) {
        for (unsigned nodes : {1u, 3u}) {
            std::ostringstream name;
            name << "t-fleet-" << routingPolicyName(pol) << "-n" << nodes;
            scenarios.push_back(fleetScenario(name.str(), nodes, pol));
        }
    }
    {
        // One autoscaled scenario rides along so the scale machinery
        // is inside the determinism net too.
        LoadScenario s = fleetScenario("t-fleet-scaled", 4,
                                       RoutingPolicy::PowerOfTwo);
        s.fleet.autoscaler.enabled = true;
        s.fleet.autoscaler.minNodes = 1;
        s.fleet.autoscaler.evalPeriodNs = 5'000'000;
        scenarios.push_back(std::move(s));
    }

    TempCacheFile serial_file("test_fleet_serial.csv");
    std::vector<LoadResult> serial;
    {
        ResultCache cache(serial_file.path);
        serial = loadSweep(cache, scenarios, 1);
    }
    TempCacheFile par_file("test_fleet_jobs8.csv");
    std::vector<LoadResult> wide;
    {
        ResultCache cache(par_file.path);
        wide = loadSweep(cache, scenarios, 8);
    }

    ASSERT_EQ(serial.size(), wide.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << scenarios[i].name;
        EXPECT_TRUE(serial[i].latency == wide[i].latency)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].histoFingerprint, wide[i].histoFingerprint)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].goodFingerprint, wide[i].goodFingerprint)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].coldStarts, wide[i].coldStarts);
        EXPECT_EQ(serial[i].maxActiveNodes, wide[i].maxActiveNodes);
        ASSERT_EQ(serial[i].nodeUtilisation.size(),
                  wide[i].nodeUtilisation.size());
        for (size_t n = 0; n < serial[i].nodeUtilisation.size(); ++n)
            EXPECT_EQ(serial[i].nodeUtilisation[n],
                      wide[i].nodeUtilisation[n]);
    }

    // The CSV backing file too (ldcal + load v3 rows).
    const std::string serial_csv = slurp(serial_file.path);
    EXPECT_FALSE(serial_csv.empty());
    EXPECT_EQ(serial_csv, slurp(par_file.path));
}

TEST(FleetSweep, SingleNodeDefaultFleetMatchesThePreFleetEngine)
{
    TempCheckpointDir ckpts("ckpt_fleet_ident");

    // The same scenario with an explicit 1-node fleet and with the
    // default-constructed FleetConfig must be indistinguishable: the
    // fleet layer's byte-identity contract, at the engine level.
    LoadScenario plain = fleetScenario("t-ident", 1,
                                       RoutingPolicy::LeastLoaded);
    LoadScenario dflt = plain;
    dflt.fleet = FleetConfig{};

    TempCacheFile fa("test_fleet_ident_a.csv");
    TempCacheFile fb("test_fleet_ident_b.csv");
    LoadResult ra, rb;
    {
        ResultCache cache(fa.path);
        ra = LoadRunner(cache).run(plain);
    }
    {
        ResultCache cache(fb.path);
        rb = LoadRunner(cache).run(dflt);
    }
    ASSERT_TRUE(ra.ok);
    ASSERT_TRUE(rb.ok);
    EXPECT_TRUE(ra.latency == rb.latency);
    EXPECT_EQ(ra.histoFingerprint, rb.histoFingerprint);
    EXPECT_EQ(ra.goodFingerprint, rb.goodFingerprint);
    EXPECT_EQ(ra.coldStarts, rb.coldStarts);
    EXPECT_EQ(ra.warmHits, rb.warmHits);
    EXPECT_EQ(ra.evictions, rb.evictions);
    EXPECT_EQ(ra.p99Ns, rb.p99Ns);
    EXPECT_EQ(ra.throughputRps, rb.throughputRps);
    // The CSV rows match field-for-field as well.
    EXPECT_EQ(slurp(fa.path), slurp(fb.path));
}

TEST(FleetClasses, SingleClassSpecMatchesTheLegacyScalarApi)
{
    TempCheckpointDir ckpts("ckpt_class_ident");

    // The redesign's adapter contract: a FleetSpec of ONE class with
    // default calibration/pool/weights is indistinguishable from the
    // legacy scalar API — histograms, fingerprints and the CSV rows
    // (including the new class fields) are byte-identical.
    LoadScenario legacy = fleetScenario("t-class-ident", 3,
                                        RoutingPolicy::LeastLoaded);
    LoadScenario classed = legacy;
    classed.fleet = FleetConfig{};
    classed.fleet.routing = RoutingPolicy::LeastLoaded;
    NodeClass k;
    k.name = "small";
    classed.fleet.spec.groups = {{k, 3}};

    TempCacheFile fa("test_class_ident_a.csv");
    TempCacheFile fb("test_class_ident_b.csv");
    LoadResult ra, rb;
    {
        ResultCache cache(fa.path);
        ra = LoadRunner(cache).run(legacy);
    }
    {
        ResultCache cache(fb.path);
        rb = LoadRunner(cache).run(classed);
    }
    ASSERT_TRUE(ra.ok);
    ASSERT_TRUE(rb.ok);
    EXPECT_TRUE(ra.latency == rb.latency);
    EXPECT_EQ(ra.histoFingerprint, rb.histoFingerprint);
    EXPECT_EQ(ra.goodFingerprint, rb.goodFingerprint);
    EXPECT_EQ(ra.coldStarts, rb.coldStarts);
    EXPECT_EQ(ra.warmHits, rb.warmHits);
    EXPECT_EQ(ra.nodes, rb.nodes);
    EXPECT_EQ(ra.classes, rb.classes);
    EXPECT_EQ(ra.fleetPowerMw, rb.fleetPowerMw);
    EXPECT_EQ(ra.fleetCostMilli, rb.fleetCostMilli);
    EXPECT_EQ(slurp(fa.path), slurp(fb.path));
}

TEST(FleetClasses, MixedClassSweepByteIdenticalAcrossWorkerCounts)
{
    TempCheckpointDir ckpts("ckpt_class_sweep");

    // A genuinely heterogeneous fleet — two classes with different
    // speed/cost/power weights (sharing the base calibration, so the
    // test stays cheap) — swept under every class-aware policy at
    // jobs 1 and 8. The cost-weighted determinism contract from the
    // issue, plus the CSV with the v4 class fields.
    NodeClass sbc;
    sbc.name = "sbc";
    sbc.costPerHour = 1.0;
    sbc.watts = 4.0;
    NodeClass srv;
    srv.name = "srv";
    srv.speedFactor = 1.6;
    srv.costPerHour = 3.0;
    srv.watts = 18.0;

    std::vector<LoadScenario> scenarios;
    for (RoutingPolicy pol :
         {RoutingPolicy::CostWeighted, RoutingPolicy::PowerWeighted,
          RoutingPolicy::LeastLoaded}) {
        std::ostringstream name;
        name << "t-class-" << routingPolicyName(pol);
        LoadScenario s = fleetScenario(name.str(), 1, pol);
        s.arrival.ratePerSec = 12'000.0;
        s.fleet.spec.groups = {{sbc, 2}, {srv, 2}};
        scenarios.push_back(std::move(s));
    }

    TempCacheFile serial_file("test_class_serial.csv");
    std::vector<LoadResult> serial;
    {
        ResultCache cache(serial_file.path);
        serial = loadSweep(cache, scenarios, 1);
    }
    TempCacheFile par_file("test_class_jobs8.csv");
    std::vector<LoadResult> wide;
    {
        ResultCache cache(par_file.path);
        wide = loadSweep(cache, scenarios, 8);
    }

    ASSERT_EQ(serial.size(), wide.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << scenarios[i].name;
        EXPECT_EQ(serial[i].classes, 2u);
        EXPECT_EQ(serial[i].nodes, 4u);
        EXPECT_EQ(serial[i].fleetPowerMw, 44'000u);
        EXPECT_EQ(serial[i].fleetCostMilli, 8'000u);
        EXPECT_TRUE(serial[i].latency == wide[i].latency)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].histoFingerprint, wide[i].histoFingerprint)
            << scenarios[i].name;
        EXPECT_EQ(serial[i].goodFingerprint, wide[i].goodFingerprint)
            << scenarios[i].name;
        // Fresh runs expose the per-class routing split; it must be
        // identical too, and every attempt lands in some class.
        ASSERT_EQ(serial[i].classRouted.size(), 2u);
        EXPECT_EQ(serial[i].classRouted, wide[i].classRouted);
        EXPECT_EQ(serial[i].classNames, wide[i].classNames);
    }
    // The cost-weighted placement really differs from least-loaded on
    // a weighted fleet (same seed, same arrivals).
    EXPECT_NE(serial[0].classRouted, serial[2].classRouted);

    const std::string serial_csv = slurp(serial_file.path);
    EXPECT_FALSE(serial_csv.empty());
    EXPECT_EQ(serial_csv, slurp(par_file.path));
}

TEST(FleetClasses, AutoscalerScalesEachClassIndependentlyToZero)
{
    // Two single-class groups with a zero floor: demand lands only on
    // group 0, so group 1 must never activate, and once the work
    // drains both groups retire every node — per-class scale-to-zero.
    NodeClass a;
    a.name = "a";
    NodeClass b;
    b.name = "b";
    FleetConfig fc;
    fc.spec.groups = {{a, 2}, {b, 2}};
    fc.autoscaler.enabled = true;
    fc.autoscaler.minNodes = 0;
    fc.autoscaler.evalPeriodNs = 1'000;
    fc.autoscaler.targetInFlightPerNode = 1.0;
    fc.autoscaler.scaleUpLagNs = 500;
    fc.autoscaler.scaleDownIdleNs = 2'000;
    PoolConfig pc;
    pc.maxInstances = 2;
    Fleet fleet(fc, pc, 1);
    Rng rng(7);

    // Scale-to-zero start: nothing is active, the first arrival
    // demand-activates one node of group 0 and pays the lag.
    EXPECT_EQ(fleet.activeNodes(), 0u);
    const Fleet::Route cold = fleet.route(0, 0, rng);
    EXPECT_EQ(cold.node, Fleet::badNode);
    EXPECT_EQ(cold.retryAtNs, 500u);
    EXPECT_EQ(fleet.groupActiveNodes(0), 1u);
    EXPECT_EQ(fleet.groupActiveNodes(1), 0u);

    // Three in-flight attempts on group 0 at the next evaluation want
    // more capacity — group 0 grows to its 2-node cap, group 1 sees
    // zero demand and stays at zero.
    EXPECT_EQ(fleet.route(0, 500, rng).node, 0u);
    for (int i = 0; i < 3; ++i)
        fleet.onAttemptStart(0, 0, 500, 600);
    fleet.route(0, 1'000, rng);
    EXPECT_EQ(fleet.groupActiveNodes(0), 2u);
    EXPECT_EQ(fleet.groupActiveNodes(1), 0u);

    // Drain; past the idle threshold every node of group 0 retires
    // too (zero floor), so the whole fleet is back to zero before the
    // late arrival demand-activates afresh.
    for (int i = 0; i < 3; ++i)
        fleet.onAttemptEnd(0, 0);
    const Fleet::Route late = fleet.route(0, 20'000, rng);
    EXPECT_EQ(fleet.deactivations(), 2u);
    EXPECT_EQ(late.node, Fleet::badNode);
    EXPECT_EQ(late.retryAtNs, 20'500u);
    EXPECT_EQ(fleet.groupActiveNodes(0), 1u); // the fresh activation
    EXPECT_EQ(fleet.groupActiveNodes(1), 0u);
}
