/**
 * @file
 * System-level tests: run-loop semantics, magic-operation plumbing,
 * idle detection, multi-core independence, and configuration.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"
#include "guest/syscall_abi.hh"

using namespace svb;

namespace
{

/** A program that stores a value then exits. */
gen::Program
storeAndExit(Addr &result, uint64_t value)
{
    gen::ProgramBuilder pb;
    result = pb.addZeroData(8);
    auto f = pb.beginFunction("main", 0);
    const int v = f.imm(int64_t(value)), out = f.newVreg();
    f.lea(out, result);
    f.store(out, 0, v, 8);
    f.ret();
    pb.setEntry("main");
    return pb.take();
}

} // namespace

TEST(SystemRun, StopsWhenAllCoresHalt)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);
    Addr result = 0;
    loadProcess(sys.kernel(),
                gen::compileProgram(storeAndExit(result, 7), IsaId::Riscv),
                "p", 0);
    sys.scheduleIdleCores();
    const uint64_t ran = sys.run(1'000'000);
    EXPECT_LT(ran, 10'000u); // tiny program: early exit, not budget
    EXPECT_TRUE(sys.cpu(0).halted());
}

TEST(SystemRun, GuestExitSimStopsTheLoop)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);

    gen::ProgramBuilder pb;
    auto f = pb.beginFunction("main", 0);
    const int op = f.imm(int64_t(sys::m5ExitSim));
    const int arg = f.imm(0);
    f.syscall(sys::sysM5, {op, arg});
    // Infinite loop after the exit request: must not matter.
    const int spin = f.newLabel();
    f.label(spin);
    f.br(spin);
    pb.setEntry("main");

    loadProcess(sys.kernel(), gen::compileProgram(pb.take(), IsaId::Riscv),
                "p", 0);
    sys.scheduleIdleCores();
    const uint64_t ran = sys.run(1'000'000);
    EXPECT_LT(ran, 10'000u);
    EXPECT_FALSE(sys.cpu(0).halted()); // stopped, not finished
}

TEST(SystemRun, RunUntilConditionStopsEarly)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);
    gen::ProgramBuilder pb;
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);
    auto f = pb.beginFunction("main", 0);
    const int iters = f.imm(1 << 20);
    f.callVoid(lib.burnAlu, {iters});
    f.ret();
    pb.setEntry("main");
    loadProcess(sys.kernel(), gen::compileProgram(pb.take(), IsaId::Riscv),
                "p", 0);
    sys.scheduleIdleCores();
    const uint64_t ran =
        sys.runUntil([&] { return sys.cycle() >= 5'000; }, 1'000'000);
    EXPECT_LE(ran, 5'001u);
    EXPECT_FALSE(sys.cpu(0).halted());
}

TEST(SystemRun, FourCoresRunIndependentPrograms)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 4;
    System sys(cfg);

    Addr results[4];
    int pids[4];
    for (int c = 0; c < 4; ++c) {
        gen::Program prog = storeAndExit(results[c], 100 + uint64_t(c));
        pids[c] = loadProcess(sys.kernel(),
                              gen::compileProgram(prog, IsaId::Riscv),
                              "p" + std::to_string(c), c)
                      .pid;
    }
    sys.scheduleIdleCores();
    sys.run(1'000'000);
    for (int c = 0; c < 4; ++c) {
        EXPECT_TRUE(sys.cpu(unsigned(c)).halted());
        EXPECT_EQ(sys.kernel().process(pids[c]).space->read(results[c], 8),
                  100u + uint64_t(c));
    }
}

TEST(SystemRun, MixedCpuModelsAcrossCores)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 2;
    System sys(cfg);

    Addr r0 = 0, r1 = 0;
    gen::Program p0 = storeAndExit(r0, 11);
    gen::Program p1 = storeAndExit(r1, 22);
    const int pid0 =
        loadProcess(sys.kernel(), gen::compileProgram(p0, IsaId::Riscv),
                    "a", 0)
            .pid;
    const int pid1 =
        loadProcess(sys.kernel(), gen::compileProgram(p1, IsaId::Riscv),
                    "b", 1)
            .pid;
    sys.scheduleIdleCores();
    sys.switchCpu(0, CpuModel::Atomic);
    sys.switchCpu(1, CpuModel::O3);
    sys.run(1'000'000);
    EXPECT_EQ(sys.kernel().process(pid0).space->read(r0, 8), 11u);
    EXPECT_EQ(sys.kernel().process(pid1).space->read(r1, 8), 22u);
}

TEST(SystemConfigTest, PaperConfigMirrorsTable41)
{
    const SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    EXPECT_EQ(cfg.numCores, 2u);
    EXPECT_EQ(cfg.clockMHz, 1000u);
    EXPECT_EQ(cfg.caches.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.caches.l1i.assoc, 8u);
    EXPECT_EQ(cfg.caches.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.caches.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(cfg.caches.l2.assoc, 4u);
    EXPECT_EQ(cfg.o3.robEntries, 192u);
    EXPECT_EQ(cfg.o3.lqEntries, 32u);
    EXPECT_EQ(cfg.o3.sqEntries, 32u);
    EXPECT_EQ(cfg.o3.numPhysIntRegs, 256u);
    // Table 4.2 / 4.3 provenance strings.
    EXPECT_NE(cfg.osLabel.find("Jammy"), std::string::npos);
    const SystemConfig x86 = SystemConfig::paperConfig(IsaId::Cx86);
    EXPECT_NE(x86.compilerLabel.find("gcc"), std::string::npos);
}

TEST(SystemRun, EventQueueIntegrates)
{
    SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
    cfg.numCores = 1;
    System sys(cfg);
    gen::ProgramBuilder pb;
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);
    auto f = pb.beginFunction("main", 0);
    const int iters = f.imm(100000);
    f.callVoid(lib.burnAlu, {iters});
    f.ret();
    pb.setEntry("main");
    loadProcess(sys.kernel(), gen::compileProgram(pb.take(), IsaId::Riscv),
                "p", 0);
    sys.scheduleIdleCores();

    bool fired = false;
    sys.events().schedule(sys.cycle() + 1'000, "probe",
                          [&] { fired = true; });
    sys.run(2'000);
    EXPECT_TRUE(fired);
}
