/**
 * @file
 * Code-generator tests: every BinOp against host arithmetic on both
 * backends, spill pressure, calling convention (args, nesting,
 * recursion), locals, and large displacements.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"

using namespace svb;

namespace
{

/** Run a 0-arg program whose main stores its result to data[0]. */
uint64_t
runProgram(gen::Program prog, Addr result, IsaId isa)
{
    SystemConfig cfg = SystemConfig::paperConfig(isa);
    cfg.numCores = 1;
    System sys(cfg);
    LoadableImage image = gen::compileProgram(prog, isa);
    LoadedProgram lp = loadProcess(sys.kernel(), image, "t", 0);
    sys.scheduleIdleCores();
    const uint64_t ran = sys.run(20'000'000);
    EXPECT_LT(ran, 20'000'000u) << "program hung";
    return sys.kernel().process(lp.pid).space->read(result, 8);
}

/** Build main() { data[0] = a <op> b; }. */
gen::Program
binProgram(gen::BinOp op, int64_t a, int64_t b, Addr &result)
{
    gen::ProgramBuilder pb;
    result = pb.addZeroData(8);
    auto f = pb.beginFunction("main", 0);
    const int va = f.imm(a), vb = f.imm(b), r = f.newVreg(),
              out = f.newVreg();
    f.bin(op, r, va, vb);
    f.lea(out, result);
    f.store(out, 0, r, 8);
    f.ret();
    pb.setEntry("main");
    return pb.take();
}

struct BinCase
{
    gen::BinOp op;
    int64_t a;
    int64_t b;
    uint64_t expect;
};

} // namespace

class GenBinOpTest
    : public ::testing::TestWithParam<std::tuple<BinCase, int>>
{
};

TEST_P(GenBinOpTest, MatchesHostArithmetic)
{
    const auto [c, isa_idx] = GetParam();
    const IsaId isa = isa_idx == 0 ? IsaId::Riscv : IsaId::Cx86;
    Addr result = 0;
    gen::Program prog = binProgram(c.op, c.a, c.b, result);
    EXPECT_EQ(runProgram(std::move(prog), result, isa), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, GenBinOpTest,
    ::testing::Combine(
        ::testing::Values(
            BinCase{gen::BinOp::Add, 5, 7, 12},
            BinCase{gen::BinOp::Add, -1, 1, 0},
            BinCase{gen::BinOp::Sub, 5, 7, uint64_t(-2)},
            BinCase{gen::BinOp::Mul, -3, 7, uint64_t(-21)},
            BinCase{gen::BinOp::Mul, 1LL << 40, 1LL << 30,
                    0 /* 2^70 wraps to zero in 64 bits */},
            BinCase{gen::BinOp::Div, -20, 3, uint64_t(-6)},
            BinCase{gen::BinOp::Rem, -20, 3, uint64_t(-2)},
            BinCase{gen::BinOp::Udiv, -20, 3, (uint64_t(-20)) / 3},
            BinCase{gen::BinOp::Urem, -20, 3, (uint64_t(-20)) % 3},
            BinCase{gen::BinOp::And, 0xff00ff, 0x0ff0f0, 0x0f00f0},
            BinCase{gen::BinOp::Or, 0xf0, 0x0f, 0xff},
            BinCase{gen::BinOp::Xor, 0xff, 0x0f, 0xf0},
            BinCase{gen::BinOp::Shl, 3, 10, 3072},
            BinCase{gen::BinOp::Shr, -1, 60, 15},
            BinCase{gen::BinOp::Sar, -64, 3, uint64_t(-8)}),
        ::testing::Values(0, 1)));

TEST(Gen, SpillPressureIsCorrect)
{
    // 40 live values: far beyond both register pools.
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        gen::ProgramBuilder pb;
        const Addr result = pb.addZeroData(8);
        auto f = pb.beginFunction("main", 0);
        std::vector<int> vs;
        uint64_t expect = 0;
        for (int i = 0; i < 40; ++i) {
            vs.push_back(f.imm(i * 1000 + 13));
            expect += uint64_t(i * 1000 + 13);
        }
        const int acc = f.imm(0);
        for (int v : vs)
            f.bin(gen::BinOp::Add, acc, acc, v);
        const int out = f.newVreg();
        f.lea(out, result);
        f.store(out, 0, acc, 8);
        f.ret();
        pb.setEntry("main");
        EXPECT_EQ(runProgram(pb.take(), result, isa), expect)
            << isaName(isa);
    }
}

TEST(Gen, FourArgumentCalls)
{
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        gen::ProgramBuilder pb;
        const Addr result = pb.addZeroData(8);
        {
            auto f = pb.beginFunction("combine", 4);
            const int r = f.newVreg();
            f.bin(gen::BinOp::Shl, r, f.arg(0), f.arg(1));
            f.bin(gen::BinOp::Add, r, r, f.arg(2));
            f.bin(gen::BinOp::Xor, r, r, f.arg(3));
            f.ret(r);
        }
        auto f = pb.beginFunction("main", 0);
        const int a = f.imm(3), b = f.imm(4), c = f.imm(5), d = f.imm(6);
        const int r =
            f.call(pb.functionIndex("combine"), {a, b, c, d});
        const int out = f.newVreg();
        f.lea(out, result);
        f.store(out, 0, r, 8);
        f.ret();
        pb.setEntry("main");
        EXPECT_EQ(runProgram(pb.take(), result, isa),
                  uint64_t(((3 << 4) + 5) ^ 6))
            << isaName(isa);
    }
}

TEST(Gen, RecursionPreservesState)
{
    // Recursive factorial exercises callee-saved registers + stack.
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        gen::ProgramBuilder pb;
        const Addr result = pb.addZeroData(8);
        {
            auto f = pb.beginFunction("fact", 1);
            const int n = f.arg(0);
            const int base = f.newLabel();
            f.brcondi(gen::CondOp::Le, n, 1, base);
            const int n1 = f.newVreg();
            f.bini(gen::BinOp::Sub, n1, n, 1);
            const int sub = f.call(pb.functionIndex("fact"), {n1});
            const int r = f.newVreg();
            f.bin(gen::BinOp::Mul, r, n, sub);
            f.ret(r);
            f.label(base);
            const int one = f.imm(1);
            f.ret(one);
        }
        auto f = pb.beginFunction("main", 0);
        const int n = f.imm(12);
        const int r = f.call(pb.functionIndex("fact"), {n});
        const int out = f.newVreg();
        f.lea(out, result);
        f.store(out, 0, r, 8);
        f.ret();
        pb.setEntry("main");
        EXPECT_EQ(runProgram(pb.take(), result, isa), 479001600u)
            << isaName(isa);
    }
}

TEST(Gen, LocalBuffersAndLeaLocal)
{
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        gen::ProgramBuilder pb;
        const Addr result = pb.addZeroData(8);
        const gen::GuestLib lib = gen::GuestLib::addTo(pb);
        auto f = pb.beginFunction("main", 0);
        const int64_t buf_off = f.localBytes(64);
        const int buf = f.newVreg(), i = f.newVreg(), addr = f.newVreg();
        const int loop = f.newLabel(), done = f.newLabel();
        f.leaLocal(buf, buf_off);
        f.movi(i, 0);
        f.label(loop);
        f.brcondi(gen::CondOp::Ge, i, 8, done);
        f.bini(gen::BinOp::Shl, addr, i, 3);
        f.bin(gen::BinOp::Add, addr, buf, addr);
        f.store(addr, 0, i, 8);
        f.addi(i, i, 1);
        f.br(loop);
        f.label(done);
        const int len = f.imm(64);
        const int h = f.call(lib.touchRead, {buf, len, f.imm(8)});
        const int out = f.newVreg();
        f.lea(out, result);
        f.store(out, 0, h, 8);
        f.ret();
        pb.setEntry("main");
        // Sum of 0..7 stored then touch-read with stride 8.
        EXPECT_EQ(runProgram(pb.take(), result, isa), 28u)
            << isaName(isa);
    }
}

TEST(Gen, LargeDisplacementLoads)
{
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        gen::ProgramBuilder pb;
        const Addr result = pb.addZeroData(8);
        const Addr big = pb.addZeroData(8192);
        auto f = pb.beginFunction("main", 0);
        const int base = f.newVreg(), v = f.imm(777), out = f.newVreg(),
                  r = f.newVreg();
        f.lea(base, big);
        f.store(base, 5000, v, 8); // beyond RISC-V's 12-bit range
        f.load(r, base, 5000, 8, false);
        f.lea(out, result);
        f.store(out, 0, r, 8);
        f.ret();
        pb.setEntry("main");
        EXPECT_EQ(runProgram(pb.take(), result, isa), 777u)
            << isaName(isa);
    }
}

TEST(Gen, SubByteMemoryAccess)
{
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        gen::ProgramBuilder pb;
        const Addr result = pb.addZeroData(8);
        auto f = pb.beginFunction("main", 0);
        const int out = f.newVreg(), v = f.imm(-2), r = f.newVreg();
        f.lea(out, result);
        f.store(out, 0, v, 1);       // store byte 0xfe
        f.load(r, out, 0, 1, true);  // sign-extended: -2
        f.store(out, 0, r, 8);
        f.ret();
        pb.setEntry("main");
        EXPECT_EQ(runProgram(pb.take(), result, isa), uint64_t(-2))
            << isaName(isa);
    }
}
