/**
 * @file
 * The invocation-load subsystem's contracts:
 *  - arrival generators are deterministic per substream, independent
 *    of how streams are partitioned across SVBENCH_JOBS workers;
 *  - the instance pool implements each keep-alive policy's cold/warm
 *    and eviction semantics;
 *  - loadSweep() produces byte-identical results and CSV rows at any
 *    worker count, with the cold path exercised under load;
 *  - the new ResultCache row modes ("ldcal", "load") round-trip, and
 *    rows of unknown modes or stale schema versions are skipped, not
 *    misparsed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/checkpoint_store.hh"
#include "core/parallel.hh"
#include "load/load_runner.hh"
#include "workloads/workloads.hh"

using namespace svb;
using namespace svb::load;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

struct TempCacheFile
{
    explicit TempCacheFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~TempCacheFile() { std::remove(path.c_str()); }
    std::string path;
};

struct TempCheckpointDir
{
    explicit TempCheckpointDir(std::string d) : dir(std::move(d))
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    ~TempCheckpointDir()
    {
        std::filesystem::remove_all(dir);
        CheckpointStore::global().resetForTest(dir);
    }
    std::string dir;
};

FunctionSpec
specFor(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    ADD_FAILURE() << "unknown function " << name;
    return {};
}

ClusterConfig
standaloneConfig(IsaId isa)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.startDb = false;
    cfg.startMemcached = false;
    return cfg;
}

LoadScenario
smallScenario(const std::string &name, KeepAlivePolicy policy)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    LoadScenario s;
    s.name = name;
    s.cluster = standaloneConfig(IsaId::Riscv);
    s.mix = {{spec, &workloads::workloadImpl(spec.workload), 1.0}};
    s.arrival.kind = ArrivalKind::Poisson;
    s.arrival.ratePerSec = 400.0;
    s.pool.policy = policy;
    s.pool.maxInstances = 4;
    s.pool.keepAliveNs = 2'000'000; // 2 ms: forces TTL expiries
    s.invocations = 400;
    s.seed = 77;
    return s;
}

} // namespace

// --------------------------------------------------------------------------
// Arrival generators
// --------------------------------------------------------------------------

TEST(Arrival, UniformGapIsExact)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Uniform;
    cfg.ratePerSec = 1000.0; // 1 ms gaps
    const auto times = ArrivalProcess::generate(cfg, Rng(1).split(0), 5);
    ASSERT_EQ(times.size(), 5u);
    for (size_t i = 0; i < times.size(); ++i)
        EXPECT_EQ(times[i], (i + 1) * 1'000'000u);
}

TEST(Arrival, PoissonIsMonotoneAndHitsTheMeanRate)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Poisson;
    cfg.ratePerSec = 500.0;
    const size_t n = 20'000;
    const auto times = ArrivalProcess::generate(cfg, Rng(2).split(0), n);
    for (size_t i = 1; i < n; ++i)
        ASSERT_GT(times[i], times[i - 1]);
    // Long-run rate within 5% of the configured one.
    const double secs = double(times.back()) * 1e-9;
    const double rate = double(n) / secs;
    EXPECT_NEAR(rate, cfg.ratePerSec, cfg.ratePerSec * 0.05);
}

TEST(Arrival, BurstPreservesTheAverageRate)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Burst;
    cfg.ratePerSec = 200.0;
    cfg.burstFactor = 5.0;
    cfg.burstDuty = 0.1;
    cfg.burstPeriodNs = 100'000'000;
    const size_t n = 20'000;
    const auto times = ArrivalProcess::generate(cfg, Rng(3).split(0), n);
    const double rate = double(n) / (double(times.back()) * 1e-9);
    EXPECT_NEAR(rate, cfg.ratePerSec, cfg.ratePerSec * 0.10);
    for (size_t i = 1; i < n; ++i)
        ASSERT_GT(times[i], times[i - 1]);
}

TEST(Arrival, SubstreamsIdenticalAtAnyWorkerCount)
{
    // The satellite contract for sim/rng split(): per-stream arrival
    // sequences depend only on (seed, streamId) — partitioning the
    // streams across 1 or 8 pool workers changes nothing.
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Poisson;
    cfg.ratePerSec = 250.0;
    const Rng master(0xfeed);
    constexpr size_t streams = 16;

    auto runWith = [&](unsigned jobs) {
        return parallelIndexed<std::vector<uint64_t>>(
            streams,
            [&](size_t id) {
                return ArrivalProcess::generate(cfg, master.split(id),
                                                200);
            },
            jobs);
    };
    const auto serial = runWith(1);
    const auto wide = runWith(8);
    ASSERT_EQ(serial.size(), wide.size());
    for (size_t i = 0; i < streams; ++i)
        EXPECT_EQ(serial[i], wide[i]) << "stream " << i;
    // And distinct streams really are distinct.
    EXPECT_NE(serial[0], serial[1]);
}

// --------------------------------------------------------------------------
// Instance pool policies
// --------------------------------------------------------------------------

TEST(InstancePool, AlwaysColdNeverReuses)
{
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::AlwaysCold;
    cfg.maxInstances = 2;
    InstancePool pool(cfg);
    uint64_t t = 0;
    for (int i = 0; i < 10; ++i) {
        t += 1000;
        const auto pl = pool.acquire(0, t);
        EXPECT_TRUE(pl.cold);
        pool.release(pl.slot, t + 100);
    }
    EXPECT_EQ(pool.stats().coldStarts, 10u);
    EXPECT_EQ(pool.stats().warmHits, 0u);
    EXPECT_EQ(pool.liveInstances(), 0u);
}

TEST(InstancePool, AlwaysWarmNeverPaysTheColdPath)
{
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::AlwaysWarm;
    cfg.maxInstances = 2;
    InstancePool pool(cfg);
    uint64_t t = 0;
    for (uint32_t fn = 0; fn < 4; ++fn) { // more functions than slots
        t += 1000;
        const auto pl = pool.acquire(fn, t);
        EXPECT_FALSE(pl.cold);
        pool.release(pl.slot, t + 100);
    }
    EXPECT_EQ(pool.stats().coldStarts, 0u);
    EXPECT_EQ(pool.stats().warmHits, 4u);
}

TEST(InstancePool, FixedTtlEvictsIdleInstances)
{
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::FixedTtl;
    cfg.maxInstances = 4;
    cfg.keepAliveNs = 1000;
    InstancePool pool(cfg);

    auto pl = pool.acquire(0, 0);
    EXPECT_TRUE(pl.cold);
    pool.release(pl.slot, 100);

    // Within the TTL: warm.
    pl = pool.acquire(0, 600);
    EXPECT_FALSE(pl.cold);
    pool.release(pl.slot, 700);

    // Idle past the TTL: evicted, cold again.
    pl = pool.acquire(0, 5000);
    EXPECT_TRUE(pl.cold);
    pool.release(pl.slot, 5100);

    EXPECT_EQ(pool.stats().coldStarts, 2u);
    EXPECT_EQ(pool.stats().warmHits, 1u);
    EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(InstancePool, FixedTtlBoundaryIsInclusive)
{
    // Regression: expireIdle() used a strict `>` comparison, so a
    // request arriving when the idle time EQUALED keepAliveNs was
    // served warm by an instance the platform had already torn down
    // at that deadline. The TTL is inclusive: exactly-at-boundary is
    // an eviction and a cold start.
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::FixedTtl;
    cfg.maxInstances = 1;
    cfg.keepAliveNs = 1000;
    InstancePool pool(cfg);

    auto pl = pool.acquire(0, 0);
    EXPECT_TRUE(pl.cold);
    pool.release(pl.slot, 700); // idle from t=700

    // One tick before the deadline: still warm.
    pl = pool.acquire(0, 700 + cfg.keepAliveNs - 1);
    EXPECT_FALSE(pl.cold);
    pool.release(pl.slot, 1700); // idle from t=1700

    // Exactly at the deadline: evicted, cold.
    pl = pool.acquire(0, 1700 + cfg.keepAliveNs);
    EXPECT_TRUE(pl.cold);
    pool.release(pl.slot, 2800);

    EXPECT_EQ(pool.stats().coldStarts, 2u);
    EXPECT_EQ(pool.stats().warmHits, 1u);
    EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(InstancePool, LruEvictsTheLeastRecentlyUsedUnderPressure)
{
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::Lru;
    cfg.maxInstances = 2;
    InstancePool pool(cfg);

    auto a = pool.acquire(0, 0); // cold, slot for fn 0
    pool.release(a.slot, 10);
    auto b = pool.acquire(1, 100); // cold, slot for fn 1
    pool.release(b.slot, 110);

    // fn 0 again: warm (still resident).
    auto c = pool.acquire(0, 200);
    EXPECT_FALSE(c.cold);
    pool.release(c.slot, 210);

    // fn 2 needs a slot: evicts fn 1 (least recently used), cold
    // start. fn 0 — more recently used — survives.
    auto d = pool.acquire(2, 300);
    EXPECT_TRUE(d.cold);
    pool.release(d.slot, 310);
    EXPECT_EQ(pool.stats().evictions, 1u);

    auto e = pool.acquire(0, 400);
    EXPECT_FALSE(e.cold);
    pool.release(e.slot, 410);

    // fn 1 was the victim, so it is cold again — and its slot comes
    // from evicting fn 2, now the least recently used.
    auto f = pool.acquire(1, 500);
    EXPECT_TRUE(f.cold);
    pool.release(f.slot, 510);
    EXPECT_EQ(pool.stats().evictions, 2u);
}

TEST(InstancePool, RecycledSlotsDoNotInheritStaleTimes)
{
    // Regression: step-3/step-4 eviction used to leave the victim's
    // lastUsedNs/busyUntilNs from its previous tenant, so a recycled
    // slot could look "recently used" (or still busy) to TTL expiry
    // before its first request even completed.
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::Lru;
    cfg.maxInstances = 1;
    InstancePool pool(cfg);

    auto a = pool.acquire(0, 0);
    pool.release(a.slot, 9'000'000); // fn 0 busy until t=9ms

    // fn 1 at t=10ms: evicts fn 0's idle instance (step 3). The
    // recycled slot's times must reflect the new tenant's start, not
    // the victim's history.
    auto b = pool.acquire(1, 10'000'000);
    EXPECT_TRUE(b.cold);
    EXPECT_EQ(pool.stats().evictions, 1u);
    EXPECT_EQ(pool.slotLastUsedNs(b.slot), 10'000'000u);
    EXPECT_EQ(pool.slotBusyUntilNs(b.slot), 10'000'000u);
    pool.release(b.slot, 11'000'000);

    // Step 4 (all slots busy, queue behind the earliest-free one for
    // a different function): same contract at the queued start time.
    auto c = pool.acquire(0, 10'500'000);
    EXPECT_TRUE(c.cold);
    EXPECT_EQ(c.startNs, 11'000'000u);
    EXPECT_EQ(pool.slotLastUsedNs(c.slot), 11'000'000u);
    EXPECT_EQ(pool.slotBusyUntilNs(c.slot), 11'000'000u);
    pool.release(c.slot, 12'000'000);
}

TEST(InstancePool, QueuesWhenEverySlotIsBusy)
{
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::FixedTtl;
    cfg.maxInstances = 1;
    cfg.keepAliveNs = 1'000'000;
    InstancePool pool(cfg);

    auto a = pool.acquire(0, 0);
    EXPECT_TRUE(a.cold);
    pool.release(a.slot, 10'000); // busy until t=10000

    // Arrives at t=100 while the only slot is busy: queued behind it,
    // warm (same function keeps the instance resident).
    auto b = pool.acquire(0, 100);
    EXPECT_FALSE(b.cold);
    EXPECT_EQ(b.startNs, 10'000u);
    pool.release(b.slot, 20'000);
}

TEST(InstancePool, SameTimestampAcquiresNeverDoubleBookASlot)
{
    // Regression: acquire() used to leave busyUntilNs untouched until
    // the matching release(), so a second arrival at the same
    // timestamp saw the just-handed-out slot as "warm idle" and
    // double-booked it. The reservation flag makes concurrent
    // same-timestamp acquires land on distinct slots.
    PoolConfig cfg;
    cfg.policy = KeepAlivePolicy::FixedTtl;
    cfg.maxInstances = 2;
    cfg.keepAliveNs = 1'000'000'000;
    InstancePool pool(cfg);

    // Warm both slots up for function 0 and let them go idle.
    auto a = pool.acquire(0, 0);
    auto b = pool.acquire(0, 0);
    EXPECT_NE(a.slot, b.slot);
    pool.release(a.slot, 1'000);
    pool.release(b.slot, 1'000);

    // Two arrivals at the same instant: both are warm hits, but they
    // must occupy the two distinct instances, not stack up on the MRU
    // one as impossible parallel work.
    auto c = pool.acquire(0, 10'000);
    auto d = pool.acquire(0, 10'000);
    EXPECT_FALSE(c.cold);
    EXPECT_FALSE(d.cold);
    EXPECT_NE(c.slot, d.slot);
    EXPECT_EQ(c.startNs, 10'000u);
    EXPECT_EQ(d.startNs, 10'000u);

    // A third same-instant arrival queues behind the earliest release
    // rather than stealing a reserved slot.
    pool.release(c.slot, 30'000);
    pool.release(d.slot, 40'000);
    auto e = pool.acquire(0, 10'000);
    EXPECT_EQ(e.startNs, 30'000u);
}

TEST(InstancePool, ReleaseWithoutAcquireDies)
{
    PoolConfig cfg;
    cfg.maxInstances = 1;
    InstancePool pool(cfg);
    EXPECT_DEATH(pool.release(0, 100), "not acquired");
}

// --------------------------------------------------------------------------
// Histogram bucket bounds near the top of the value range
// --------------------------------------------------------------------------

TEST(Histogram, BucketBoundsContainTheirValuesUpToUint64Max)
{
    // Regression: bucketLow/bucketHigh in the top octave used to be
    // computed with an unguarded shift, so bounds near 2^63 could
    // wrap; they must bracket their value for the whole uint64 range.
    const uint64_t probes[] = {
        1,
        LatencyHistogram::kSubBuckets - 1,
        LatencyHistogram::kSubBuckets,
        (uint64_t(1) << 62) + 12345,
        (uint64_t(1) << 63) - 1,
        uint64_t(1) << 63,
        (uint64_t(1) << 63) + 0x3039,
        ~uint64_t(0),
    };
    for (uint64_t v : probes) {
        const size_t idx = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(idx, LatencyHistogram::numBuckets()) << v;
        EXPECT_LE(LatencyHistogram::bucketLow(idx), v) << v;
        EXPECT_GE(LatencyHistogram::bucketHigh(idx), v) << v;
    }

    // The layout is contiguous (no gaps, no wrap-induced overlap) and
    // the top bucket saturates exactly at UINT64_MAX.
    for (size_t i = 0; i + 1 < LatencyHistogram::numBuckets(); ++i) {
        ASSERT_LE(LatencyHistogram::bucketLow(i),
                  LatencyHistogram::bucketHigh(i)) << i;
        ASSERT_EQ(LatencyHistogram::bucketHigh(i) + 1,
                  LatencyHistogram::bucketLow(i + 1)) << i;
    }
    EXPECT_EQ(
        LatencyHistogram::bucketHigh(LatencyHistogram::numBuckets() - 1),
        ~uint64_t(0));
}

TEST(Histogram, PercentileIsNeverTinyForHugeLatencies)
{
    // Regression: an unguarded shift could wrap a top-octave bucket
    // bound to a tiny value, so percentile() reported nanoseconds for
    // multi-century latencies. The reported value must always be at
    // or above the true order statistic, within one bucket width.
    const uint64_t big = (uint64_t(1) << 63) + 0x3039;
    LatencyHistogram h;
    h.record(100);
    h.record(big);
    EXPECT_EQ(h.maxValue(), big);
    EXPECT_GE(h.percentile(99.0), big);
    EXPECT_LE(h.percentile(99.0),
              LatencyHistogram::bucketHigh(
                  LatencyHistogram::bucketIndex(big)));

    // In the very top bucket the inclusive bound saturates to
    // UINT64_MAX; the exact recorded maximum is reported instead.
    const uint64_t huge = ~uint64_t(0) - 5;
    LatencyHistogram h2;
    h2.record(100);
    h2.record(huge);
    EXPECT_EQ(h2.percentile(99.0), huge);
    EXPECT_EQ(h2.percentile(100.0), huge);
}

// --------------------------------------------------------------------------
// Load sweep over the simulated cluster
// --------------------------------------------------------------------------

TEST(LoadSweep, DeterministicAcrossWorkerCountsAndExercisesColdPath)
{
    TempCheckpointDir ckpts("ckpt_load_sweep");

    const std::vector<LoadScenario> scenarios = {
        smallScenario("t-ttl", KeepAlivePolicy::FixedTtl),
        smallScenario("t-warm", KeepAlivePolicy::AlwaysWarm),
        smallScenario("t-cold", KeepAlivePolicy::AlwaysCold),
    };

    TempCacheFile serial_file("test_load_serial.csv");
    std::vector<LoadResult> serial;
    {
        ResultCache cache(serial_file.path);
        serial = loadSweep(cache, scenarios, 1);
    }

    TempCacheFile par_file("test_load_jobs8.csv");
    std::vector<LoadResult> wide;
    {
        ResultCache cache(par_file.path);
        wide = loadSweep(cache, scenarios, 8);
    }

    ASSERT_EQ(serial.size(), wide.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << scenarios[i].name;
        // Byte-identical histograms and cold-start counts.
        EXPECT_TRUE(serial[i].latency == wide[i].latency);
        EXPECT_EQ(serial[i].histoFingerprint, wide[i].histoFingerprint);
        EXPECT_EQ(serial[i].coldStarts, wide[i].coldStarts);
        EXPECT_EQ(serial[i].p99Ns, wide[i].p99Ns);
        EXPECT_EQ(serial[i].invocations, serial[i].latency.count());
    }

    // The CSV backing file too (ldcal + load rows, submission order).
    const std::string serial_csv = slurp(serial_file.path);
    EXPECT_FALSE(serial_csv.empty());
    EXPECT_EQ(serial_csv, slurp(par_file.path));

    // The keep-alive policy decides how often the cold path is paid.
    const LoadResult &ttl = serial[0];
    const LoadResult &warm = serial[1];
    const LoadResult &cold = serial[2];
    EXPECT_GT(ttl.coldStarts, 0u);
    EXPECT_LT(ttl.coldStarts, ttl.invocations);
    EXPECT_EQ(warm.coldStarts, 0u);
    EXPECT_EQ(cold.coldStarts, cold.invocations);
    // Mixing cold and warm invocations separates the tail from the
    // median: the cold path is really exercised under load.
    EXPECT_GT(ttl.p99Ns, ttl.p50Ns);
    // Warm-only traffic is strictly faster at the median than
    // cold-only traffic.
    EXPECT_LT(warm.p50Ns, cold.p50Ns);
}

TEST(LoadSweep, SecondSweepIsAllCacheHits)
{
    TempCheckpointDir ckpts("ckpt_load_rerun");
    const std::vector<LoadScenario> scenarios = {
        smallScenario("t-rerun", KeepAlivePolicy::FixedTtl)};

    TempCacheFile file("test_load_rerun.csv");
    ResultCache cache(file.path);
    const auto first = loadSweep(cache, scenarios, 2);
    const std::string csv_after_first = slurp(file.path);
    const auto second = loadSweep(cache, scenarios, 2);
    EXPECT_EQ(csv_after_first, slurp(file.path));
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first[0].coldStarts, second[0].coldStarts);
    EXPECT_EQ(first[0].p99Ns, second[0].p99Ns);
    EXPECT_EQ(first[0].histoFingerprint, second[0].histoFingerprint);
    // A cache-hit result carries the summary but not the buckets.
    EXPECT_EQ(second[0].latency.count(), 0u);
    EXPECT_TRUE(second[0].ok);
}

TEST(LoadSweep, ScenarioNamesWithCacheMetacharactersDie)
{
    // The scenario name is a CSV row-key component: ',' separates key
    // fields, '|' separates row fields, '=' separates field values. A
    // name containing any of them would corrupt the backing file, so
    // both entry points reject it up front.
    TempCacheFile file("test_load_badname.csv");
    for (const char *bad : {"a,b", "a|b", "a=b", ""}) {
        LoadScenario s = smallScenario("placeholder",
                                       KeepAlivePolicy::FixedTtl);
        s.name = bad;
        EXPECT_DEATH(
            {
                ResultCache cache(file.path);
                LoadRunner(cache).run(s);
            },
            "metacharacter|empty name")
            << "name: '" << bad << "'";
        EXPECT_DEATH(
            {
                ResultCache cache(file.path);
                loadSweep(cache, {s}, 1);
            },
            "metacharacter|empty name")
            << "name: '" << bad << "'";
    }
}

TEST(LoadResultGuards, ZeroSpanReportsZeroNotInfOrNan)
{
    // throughputRps and the utilisation shares divide by the simulated
    // load span; a degenerate scenario must report 0, not inf/nan.
    EXPECT_EQ(safeRatePerSec(100, 0), 0.0);
    EXPECT_EQ(safeShare(5, 0), 0.0);
    EXPECT_GT(safeRatePerSec(100, 1'000'000'000), 0.0);
    EXPECT_DOUBLE_EQ(safeShare(1, 4), 0.25);
}

TEST(LoadResultGuards, SingleInvocationScenarioStaysFinite)
{
    TempCheckpointDir ckpts("ckpt_load_single");
    TempCacheFile file("test_load_single.csv");
    LoadScenario s = smallScenario("t-single", KeepAlivePolicy::FixedTtl);
    s.invocations = 1;
    ResultCache cache(file.path);
    const LoadResult res = LoadRunner(cache).run(s);
    ASSERT_TRUE(res.ok);
    EXPECT_TRUE(std::isfinite(res.throughputRps));
    EXPECT_TRUE(std::isfinite(res.fleetUtilisation));
    ASSERT_EQ(res.nodeUtilisation.size(), 1u);
    EXPECT_TRUE(std::isfinite(res.nodeUtilisation[0]));
    EXPECT_GE(res.throughputRps, 0.0);
}

// --------------------------------------------------------------------------
// ResultCache row modes and schema versions
// --------------------------------------------------------------------------

TEST(ResultCacheSchema, UnknownModeRowsAreSkippedNotMisparsed)
{
    TempCacheFile file("test_load_schema.csv");
    {
        std::ofstream os(file.path);
        os << "riscv64,cassandra,00,fib,futuremode|ok=1|v=9\n";
    }
    ResultCache cache(file.path);
    // The unknown-mode row must not satisfy any lookup.
    std::map<std::string, uint64_t> row;
    EXPECT_FALSE(
        cache.lookupLoadRow("riscv64,cassandra,00,fib,futuremode", row));
}

TEST(ResultCacheSchema, StaleVersionRowsAreSkipped)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    const ClusterConfig cfg = standaloneConfig(IsaId::Riscv);

    TempCacheFile file("test_load_stale.csv");
    std::string key;
    {
        ResultCache cache(file.path);
        key = cache.loadCalKey(cfg, spec);
    }
    {
        // A complete ldcal row, but with a schema version from the
        // future: every field present, still rejected.
        std::ofstream os(file.path);
        os << key
           << "|coldNs=5|ok=1|v=99|warm0Ns=1|warm1Ns=1|warm2Ns=1|"
              "warm3Ns=1\n";
    }
    ResultCache cache(file.path);
    LoadCalibration cal;
    EXPECT_FALSE(cache.lookupLoadCal(cfg, spec, cal));
}

TEST(ResultCacheSchema, LoadCalRowRoundTrips)
{
    const FunctionSpec spec = specFor("fibonacci-go");
    const ClusterConfig cfg = standaloneConfig(IsaId::Riscv);

    TempCacheFile file("test_load_roundtrip.csv");
    LoadCalibration cal;
    cal.name = spec.name;
    cal.coldNs = 123456;
    for (unsigned k = 0; k < loadWarmSamples; ++k)
        cal.warmNs[k] = 1000 + k;
    cal.ok = true;
    {
        ResultCache cache(file.path);
        cache.recordLoadCal(cfg, spec, cal);
    }
    // A fresh cache instance re-reads it from disk.
    ResultCache cache(file.path);
    LoadCalibration back;
    ASSERT_TRUE(cache.lookupLoadCal(cfg, spec, back));
    EXPECT_EQ(back.coldNs, cal.coldNs);
    for (unsigned k = 0; k < loadWarmSamples; ++k)
        EXPECT_EQ(back.warmNs[k], cal.warmNs[k]);
    EXPECT_TRUE(back.ok);
}
