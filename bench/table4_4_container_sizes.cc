/**
 * @file
 * Table 4.4: compressed container image sizes (MB) for the x86 and
 * RISC-V images of every evaluated function, from the layered
 * registry model. Go images are the lightest, NodeJS second, Python
 * heaviest — and cold-start time tracks image size (Section 4.2.5).
 */

#include "bench_common.hh"
#include "stack/image.hh"

using namespace svb;

int
main()
{
    report::figureHeader("Table 4.4",
                         "Docker container compressed size in MB",
                         {});
    std::vector<report::Row> rows;
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        const auto x86 =
            containerImage(spec, IsaId::Cx86, RegistryProfile::GPour);
        const auto rv =
            containerImage(spec, IsaId::Riscv, RegistryProfile::GPour);
        rows.push_back({spec.name,
                        {x86 ? x86->totalMb() : -1.0,
                         rv ? rv->totalMb() : -1.0}});
    }
    report::table({"Function", "x86", "RISC-V"}, rows);

    // Layer breakdown for one image of each tier, showing the model.
    std::printf("\nLayer decomposition (RISC-V, GPour profile):\n");
    for (const char *name :
         {"fibonacci-go", "fibonacci-nodejs", "fibonacci-python"}) {
        for (const FunctionSpec &spec : workloads::allFunctions()) {
            if (spec.name != name)
                continue;
            const auto img =
                containerImage(spec, IsaId::Riscv, RegistryProfile::GPour);
            std::printf("  %-20s base %5.2f + runtime %6.2f + libs %6.2f"
                        " + app %5.2f = %7.2f MB\n",
                        name, img->baseOsMb, img->runtimeMb, img->libsMb,
                        img->appMb, img->totalMb());
        }
    }
    return 0;
}
