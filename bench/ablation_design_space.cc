/**
 * @file
 * Design-space ablations (the thesis' stated future work, Section 6):
 * sweep L2 size, branch-predictor strength and LSQ depth on one cold
 * and one warm request of a representative function, on both ISAs.
 *
 * Every point is an independent simulation, so the whole grid is
 * collected first and fanned out across host cores with parallelRun()
 * (cache-free: these configurations differ in fields the ResultCache
 * key does not cover). Output is printed in grid order afterwards,
 * identical to the old serial loop.
 */

#include "bench_common.hh"

using namespace svb;

namespace
{

FunctionSpec
pick(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    return {};
}

/** One ablation point: the section it belongs to plus its job. */
struct Point
{
    std::string section; ///< figure header this point prints under
    std::string label;
    SweepJob job;
};

void
printPoint(const Point &point, const FunctionResult &res)
{
    std::printf("  %-34s cold %9lu cyc (cpi %4.2f)   warm %9lu cyc"
                " (cpi %4.2f)%s\n",
                point.label.c_str(), (unsigned long)res.cold.cycles,
                res.cold.cpi, (unsigned long)res.warm.cycles, res.warm.cpi,
                res.ok ? "" : "  [FAILED]");
}

} // namespace

int
main()
{
    const FunctionSpec spec = pick("fibonacci-go");
    const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
    std::vector<Point> points;
    auto add = [&](const char *section, std::string label,
                   ClusterConfig cfg) {
        points.push_back({section, std::move(label), {cfg, spec, &impl}});
    };

    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (uint32_t kb : {256u, 512u, 1024u, 2048u}) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            cfg.system.caches.l2.sizeBytes = kb * 1024;
            add("Ablation A", std::string(isaName(isa)) + " L2=" +
                                  std::to_string(kb) + "KB",
                cfg);
        }
    }

    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (uint32_t entries : {256u, 1024u, 4096u, 16384u}) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            cfg.system.o3.bp.tableEntries = entries;
            cfg.system.o3.bp.btbEntries = entries;
            add("Ablation B", std::string(isaName(isa)) + " BP=" +
                                  std::to_string(entries) + " entries",
                cfg);
        }
    }

    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (unsigned entries : {8u, 16u, 32u, 64u}) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            cfg.system.o3.lqEntries = entries;
            cfg.system.o3.sqEntries = entries;
            add("Ablation C", std::string(isaName(isa)) + " LQ/SQ=" +
                                  std::to_string(entries),
                cfg);
        }
    }

    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (BpKind kind :
             {BpKind::Bimodal, BpKind::GShare, BpKind::Tournament}) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            cfg.system.o3.bp.kind = kind;
            add("Ablation D",
                std::string(isaName(isa)) + " " + bpKindName(kind), cfg);
        }
    }

    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (int mode = 0; mode < 3; ++mode) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            std::string label(isaName(isa));
            if (mode >= 1) {
                cfg.system.caches.l1i.nextLinePrefetch = true;
                label += " +L1I-pf";
            }
            if (mode >= 2) {
                cfg.system.caches.l2.nextLinePrefetch = true;
                label += " +L2-pf";
            }
            if (mode == 0)
                label += " no prefetch";
            add("Ablation E", label, cfg);
        }
    }

    std::vector<SweepJob> jobs;
    jobs.reserve(points.size());
    for (const Point &point : points)
        jobs.push_back(point.job);
    const std::vector<FunctionResult> results = parallelRun(jobs);

    const std::map<std::string, std::string> captions = {
        {"Ablation A", "L2 capacity sweep (fibonacci-go)"},
        {"Ablation B", "branch predictor sweep (fibonacci-go)"},
        {"Ablation C", "LSQ depth sweep (fibonacci-go)"},
        {"Ablation D", "branch predictor organisation (fibonacci-go)"},
        {"Ablation E", "next-line prefetching (fibonacci-go)"},
    };
    std::string current;
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].section != current) {
            current = points[i].section;
            report::figureHeader(current, captions.at(current), {});
        }
        printPoint(points[i], results[i]);
    }
    return 0;
}
