/**
 * @file
 * Design-space ablations (the thesis' stated future work, Section 6):
 * sweep L2 size, branch-predictor strength and LSQ depth on one cold
 * and one warm request of a representative function, on both ISAs.
 */

#include "bench_common.hh"

using namespace svb;

namespace
{

FunctionSpec
pick(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    return {};
}

void
runPoint(const std::string &label, const ClusterConfig &cfg,
         const FunctionSpec &spec)
{
    ExperimentRunner runner(cfg);
    const FunctionResult res =
        runner.runFunction(spec, workloads::workloadImpl(spec.workload));
    std::printf("  %-34s cold %9lu cyc (cpi %4.2f)   warm %9lu cyc"
                " (cpi %4.2f)%s\n",
                label.c_str(), (unsigned long)res.cold.cycles,
                res.cold.cpi, (unsigned long)res.warm.cycles, res.warm.cpi,
                res.ok ? "" : "  [FAILED]");
}

} // namespace

int
main()
{
    const FunctionSpec spec = pick("fibonacci-go");

    report::figureHeader("Ablation A", "L2 capacity sweep (fibonacci-go)",
                         {});
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (uint32_t kb : {256u, 512u, 1024u, 2048u}) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            cfg.system.caches.l2.sizeBytes = kb * 1024;
            runPoint(std::string(isaName(isa)) + " L2=" +
                         std::to_string(kb) + "KB",
                     cfg, spec);
        }
    }

    report::figureHeader("Ablation B",
                         "branch predictor sweep (fibonacci-go)", {});
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (uint32_t entries : {256u, 1024u, 4096u, 16384u}) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            cfg.system.o3.bp.tableEntries = entries;
            cfg.system.o3.bp.btbEntries = entries;
            runPoint(std::string(isaName(isa)) + " BP=" +
                         std::to_string(entries) + " entries",
                     cfg, spec);
        }
    }

    report::figureHeader("Ablation C", "LSQ depth sweep (fibonacci-go)",
                         {});
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (unsigned entries : {8u, 16u, 32u, 64u}) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            cfg.system.o3.lqEntries = entries;
            cfg.system.o3.sqEntries = entries;
            runPoint(std::string(isaName(isa)) + " LQ/SQ=" +
                         std::to_string(entries),
                     cfg, spec);
        }
    }

    report::figureHeader("Ablation D",
                         "branch predictor organisation (fibonacci-go)",
                         {});
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (BpKind kind :
             {BpKind::Bimodal, BpKind::GShare, BpKind::Tournament}) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            cfg.system.o3.bp.kind = kind;
            runPoint(std::string(isaName(isa)) + " " + bpKindName(kind),
                     cfg, spec);
        }
    }

    report::figureHeader(
        "Ablation E", "next-line prefetching (fibonacci-go)", {});
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (int mode = 0; mode < 3; ++mode) {
            ClusterConfig cfg = benchutil::chapter4Config(isa, false);
            std::string label(isaName(isa));
            if (mode >= 1) {
                cfg.system.caches.l1i.nextLinePrefetch = true;
                label += " +L1I-pf";
            }
            if (mode >= 2) {
                cfg.system.caches.l2.nextLinePrefetch = true;
                label += " +L2-pf";
            }
            if (mode == 0)
                label += " no prefetch";
            runPoint(label, cfg, spec);
        }
    }
    return 0;
}
