/**
 * @file
 * Figure 4.4: number of cycles for the standalone functions and the
 * online-shop application on the RISC-V simulated system, cold vs
 * warm execution.
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto specs = benchutil::standalonePlusShop();
    const auto results =
        benchutil::sweep(cache, IsaId::Riscv, specs, false);

    report::figureHeader(
        "Figure 4.4",
        "cycles, standalone functions + online shop, RISC-V (cold/warm)",
        {SystemConfig::paperConfig(IsaId::Riscv)});

    std::vector<report::Row> rows;
    for (const FunctionResult &res : results) {
        rows.push_back({res.name,
                        {double(res.cold.cycles), double(res.warm.cycles)}});
    }
    report::barFigure({{"RISCV Cold", "cycles"}, {"RISCV Warm", "cycles"}},
                      rows);
    return 0;
}
