/**
 * @file
 * Figure 4.13: L2 misses for the Python functions on the x86
 * simulated system. The emailservice ships far fewer dependencies,
 * so its cold L2 miss count — and hence its cold time — stays low:
 * the paper's "emailservice exception".
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto results = benchutil::sweep(
        cache, IsaId::Cx86, workloads::pythonFunctions(), false);

    report::figureHeader("Figure 4.13",
                         "L2 misses, Python functions, x86 (cold/warm)",
                         {SystemConfig::paperConfig(IsaId::Cx86)});

    std::vector<report::Row> rows;
    for (const FunctionResult &res : results) {
        rows.push_back({res.name,
                        {double(res.cold.l2Misses),
                         double(res.warm.l2Misses)}});
    }
    report::barFigure({{"x86 Cold", "L2 misses"}, {"x86 Warm", "L2 misses"}},
                      rows);
    return 0;
}
