/**
 * @file
 * Figure 4.5: number of cycles for the hotel application on the
 * RISC-V simulated system (profile's extreme cold bar included here,
 * unlike the paper's clipped plot).
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto results = benchutil::sweep(cache, IsaId::Riscv,
                                          workloads::hotelSuite(), true);

    report::figureHeader(
        "Figure 4.5", "cycles, hotel application, RISC-V (cold/warm)",
        {SystemConfig::paperConfig(IsaId::Riscv)});

    std::vector<report::Row> rows;
    for (const FunctionResult &res : results) {
        rows.push_back({res.name,
                        {double(res.cold.cycles), double(res.warm.cycles)}});
    }
    report::barFigure({{"RISCV Cold", "cycles"}, {"RISCV Warm", "cycles"}},
                      rows);
    return 0;
}
