/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every binary keys its measurements through the on-disk ResultCache
 * (svbench_results.csv in the working directory), so figures that
 * replot the same experiments — exactly as the paper's do — reuse
 * each other's runs. Set SVBENCH_FRESH=1 to force re-measurement.
 */

#ifndef SVB_BENCH_BENCH_COMMON_HH
#define SVB_BENCH_BENCH_COMMON_HH

#include <vector>

#include "core/parallel.hh"
#include "core/report.hh"
#include "core/result_cache.hh"
#include "workloads/workloads.hh"

namespace svb::benchutil
{

/** Cluster configuration used throughout Chapter 4. */
inline ClusterConfig
chapter4Config(IsaId isa, bool with_stores,
               db::DbKind kind = db::DbKind::Cassandra)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.dbKind = kind;
    cfg.startDb = with_stores;
    cfg.startMemcached = with_stores;
    return cfg;
}

/** Build the parallel-scheduler job list for one configuration. */
inline std::vector<SweepJob>
sweepJobs(const ClusterConfig &cfg, const std::vector<FunctionSpec> &specs)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(specs.size());
    for (const FunctionSpec &spec : specs)
        jobs.push_back({cfg, spec,
                        &workloads::workloadImpl(spec.workload)});
    return jobs;
}

/**
 * Run (or fetch) detailed results for a list of functions.
 *
 * Independent experiments fan out across host cores (SVBENCH_JOBS
 * workers); results, figure tables and the CSV cache are identical to
 * a serial run — see core/parallel.hh.
 */
inline std::vector<FunctionResult>
sweep(ResultCache &cache, IsaId isa,
      const std::vector<FunctionSpec> &specs, bool with_stores)
{
    const ClusterConfig cfg = chapter4Config(isa, with_stores);
    return parallelSweep(cache, sweepJobs(cfg, specs));
}

/**
 * Run (or fetch) the same function set on several configurations as
 * ONE parallel batch, so the scheduler overlaps simulations across
 * configurations too (e.g. both ISAs of Figs 4.15-4.18 at once).
 * @return one result vector per configuration, in @p cfgs order.
 */
inline std::vector<std::vector<FunctionResult>>
sweepConfigs(ResultCache &cache, const std::vector<ClusterConfig> &cfgs,
             const std::vector<FunctionSpec> &specs)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(cfgs.size() * specs.size());
    for (const ClusterConfig &cfg : cfgs) {
        for (const SweepJob &job : sweepJobs(cfg, specs))
            jobs.push_back(job);
    }
    const std::vector<FunctionResult> flat = parallelSweep(cache, jobs);
    std::vector<std::vector<FunctionResult>> out(cfgs.size());
    for (size_t c = 0; c < cfgs.size(); ++c) {
        out[c].assign(flat.begin() + c * specs.size(),
                      flat.begin() + (c + 1) * specs.size());
    }
    return out;
}

/** The standalone+shop set in the paper's Fig 4.4/4.12/4.15 order. */
inline std::vector<FunctionSpec>
standalonePlusShop()
{
    std::vector<FunctionSpec> specs = workloads::standaloneSuite();
    for (const FunctionSpec &spec : workloads::onlineShopSuite())
        specs.push_back(spec);
    return specs;
}

} // namespace svb::benchutil

#endif // SVB_BENCH_BENCH_COMMON_HH
