/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every binary keys its measurements through the on-disk ResultCache
 * (svbench_results.csv in the working directory), so figures that
 * replot the same experiments — exactly as the paper's do — reuse
 * each other's runs. Set SVBENCH_FRESH=1 to force re-measurement.
 */

#ifndef SVB_BENCH_BENCH_COMMON_HH
#define SVB_BENCH_BENCH_COMMON_HH

#include <vector>

#include "core/report.hh"
#include "core/result_cache.hh"
#include "workloads/workloads.hh"

namespace svb::benchutil
{

/** Cluster configuration used throughout Chapter 4. */
inline ClusterConfig
chapter4Config(IsaId isa, bool with_stores,
               db::DbKind kind = db::DbKind::Cassandra)
{
    ClusterConfig cfg;
    cfg.system = SystemConfig::paperConfig(isa);
    cfg.dbKind = kind;
    cfg.startDb = with_stores;
    cfg.startMemcached = with_stores;
    return cfg;
}

/** Run (or fetch) detailed results for a list of functions. */
inline std::vector<FunctionResult>
sweep(ResultCache &cache, IsaId isa,
      const std::vector<FunctionSpec> &specs, bool with_stores)
{
    std::vector<FunctionResult> out;
    const ClusterConfig cfg = chapter4Config(isa, with_stores);
    for (const FunctionSpec &spec : specs) {
        out.push_back(cache.detailed(
            cfg, spec, workloads::workloadImpl(spec.workload)));
    }
    return out;
}

/** The standalone+shop set in the paper's Fig 4.4/4.12/4.15 order. */
inline std::vector<FunctionSpec>
standalonePlusShop()
{
    std::vector<FunctionSpec> specs = workloads::standaloneSuite();
    for (const FunctionSpec &spec : workloads::onlineShopSuite())
        specs.push_back(spec);
    return specs;
}

} // namespace svb::benchutil

#endif // SVB_BENCH_BENCH_COMMON_HH
