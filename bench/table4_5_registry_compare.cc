/**
 * @file
 * Table 4.5: RISC-V image sizes, the thesis' registry ("GPour") vs
 * the independently published "Natheesan" port. The hotel images are
 * absent from the latter: they target MongoDB, which has no RISC-V
 * port, so they cannot run (Section 4.2.6).
 */

#include "bench_common.hh"
#include "stack/image.hh"

using namespace svb;

int
main()
{
    report::figureHeader(
        "Table 4.5",
        "GPour vs Natheesan RISC-V container compressed size in MB", {});
    std::vector<report::Row> rows;
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.usesDb)
            continue; // the paper's Table 4.5 lists the 15 runnable ones
        const auto nath = containerImage(spec, IsaId::Riscv,
                                         RegistryProfile::Natheesan);
        const auto gpour =
            containerImage(spec, IsaId::Riscv, RegistryProfile::GPour);
        rows.push_back({spec.name,
                        {nath ? nath->totalMb() : -1.0,
                         gpour ? gpour->totalMb() : -1.0}});
    }
    report::table({"Function", "Natheesan", "GPour"}, rows);
    std::printf("\nHotel images: not comparable — the Natheesan port"
                " expects MongoDB, which has no RISC-V build.\n");
    return 0;
}
