/**
 * @file
 * Load extension: tail latency under sustained invocation streams,
 * RISC-V vs x86.
 *
 * The paper's Figure-4.1 protocol measures one cold and one warm
 * request per function. This bench drives the same simulated
 * platform with an open-loop Poisson arrival process over a
 * three-function Go mix and sweeps (arrival rate x keep-alive
 * policy) on both ISAs: the keep-alive policy sets the cold-start
 * rate, and the cold-start rate is what separates p50 from p99.
 *
 * Deterministic: service times are calibrated on the simulated
 * cluster (bit-deterministic, checkpoint-restored cold starts) and
 * the stream simulation is a pure function of the scenario seed —
 * identical seeds give byte-identical histograms and cold-start
 * counts across any SVBENCH_JOBS value.
 */

#include <cstdio>
#include <sstream>

#include "bench_common.hh"
#include "load/load_runner.hh"

using namespace svb;

namespace
{

struct PolicyPoint
{
    const char *label;
    load::PoolConfig pool;
};

std::vector<load::LoadMixEntry>
goMix()
{
    std::vector<load::LoadMixEntry> mix;
    for (const char *fn : {"fibonacci-go", "aes-go", "auth-go"}) {
        for (const FunctionSpec &spec : workloads::standaloneSuite()) {
            if (spec.name == fn)
                mix.push_back(
                    {spec, &workloads::workloadImpl(spec.workload), 1.0});
        }
    }
    return mix;
}

} // namespace

int
main()
{
    ResultCache cache;

    const std::vector<double> rates = {50.0, 200.0, 800.0};
    const std::vector<PolicyPoint> policies = {
        {"always-warm",
         {load::KeepAlivePolicy::AlwaysWarm, 4, 0}},
        {"lru-cap2",
         {load::KeepAlivePolicy::Lru, 2, 0}},
        {"ttl-50ms",
         {load::KeepAlivePolicy::FixedTtl, 4, 50'000'000}},
        {"always-cold",
         {load::KeepAlivePolicy::AlwaysCold, 4, 0}},
    };

    // One scenario list over both ISAs: the whole sweep is a single
    // parallel batch, recorded in submission order.
    std::vector<load::LoadScenario> scenarios;
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (double rate : rates) {
            for (const PolicyPoint &pp : policies) {
                load::LoadScenario s;
                std::ostringstream name;
                name << "go-mix3;poisson;rate" << unsigned(rate) << ";"
                     << pp.label << ";n2000;seed29";
                s.name = name.str();
                s.cluster = benchutil::chapter4Config(isa, false);
                s.mix = goMix();
                s.arrival.kind = load::ArrivalKind::Poisson;
                s.arrival.ratePerSec = rate;
                s.pool = pp.pool;
                s.invocations = 2000;
                s.seed = 29;
                scenarios.push_back(std::move(s));
            }
        }
    }

    const std::vector<load::LoadResult> results =
        load::loadSweep(cache, scenarios);

    const size_t perIsa = rates.size() * policies.size();
    for (size_t isaIdx = 0; isaIdx < 2; ++isaIdx) {
        const IsaId isa = isaIdx == 0 ? IsaId::Riscv : IsaId::Cx86;
        report::figureHeader(
            "Load extension",
            std::string("tail latency vs arrival rate and keep-alive, ") +
                isaName(isa) + " (Poisson, 3-function Go mix, 2000 "
                "invocations)",
            {SystemConfig::paperConfig(isa)});

        std::vector<report::Row> rows;
        for (size_t k = 0; k < perIsa; ++k) {
            const load::LoadResult &res = results[isaIdx * perIsa + k];
            const size_t rateIdx = k / policies.size();
            const PolicyPoint &pp = policies[k % policies.size()];
            std::ostringstream label;
            label << unsigned(rates[rateIdx]) << "rps/" << pp.label;
            const double n = double(std::max<uint64_t>(1, res.invocations));
            rows.push_back(
                {label.str(),
                 {100.0 * double(res.coldStarts) / n,
                  double(res.p50Ns) / 1000.0, double(res.p90Ns) / 1000.0,
                  double(res.p99Ns) / 1000.0, double(res.p999Ns) / 1000.0,
                  res.throughputRps}});
        }
        report::table({"scenario", "cold %", "p50 us", "p90 us", "p99 us",
                       "p99.9 us", "thru rps"},
                      rows);
    }

    // The determinism probe: per-scenario histogram fingerprints and
    // cold-start counts, independent of SVBENCH_JOBS.
    std::printf("\nDeterminism fingerprints (stable across SVBENCH_JOBS):\n");
    for (const load::LoadResult &res : results) {
        std::printf("  %-60s cold=%-5lu histo=%016lx\n",
                    res.scenario.c_str(),
                    (unsigned long)res.coldStarts,
                    (unsigned long)res.histoFingerprint);
    }
    return 0;
}
