/**
 * @file
 * Figure 4.19: cycles for the hotel application, RISC-V vs x86.
 * Neither platform does well cold; the RISC-V profile function is the
 * worst cold run of the whole evaluation yet among the quickest warm.
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto rv = benchutil::sweep(cache, IsaId::Riscv,
                                     workloads::hotelSuite(), true);
    const auto cx = benchutil::sweep(cache, IsaId::Cx86,
                                     workloads::hotelSuite(), true);

    report::figureHeader("Figure 4.19",
                         "cycles, hotel application, RISC-V vs x86",
                         {SystemConfig::paperConfig(IsaId::Cx86),
                          SystemConfig::paperConfig(IsaId::Riscv)});

    std::vector<report::Row> rows;
    for (size_t i = 0; i < rv.size(); ++i) {
        rows.push_back({rv[i].name,
                        {double(cx[i].cold.cycles),
                         double(cx[i].warm.cycles),
                         double(rv[i].cold.cycles),
                         double(rv[i].warm.cycles)}});
    }
    report::barFigure({{"x86 Cold", "cycles"},
                       {"x86 Warm", "cycles"},
                       {"RISCV Cold", "cycles"},
                       {"RISCV Warm", "cycles"}},
                      rows);
    return 0;
}
