/**
 * @file
 * Figures 4.15-4.18: RISC-V vs x86 on the standalone + online-shop
 * set — cycles, committed instructions, L1I misses, and L2 misses,
 * each cold and warm. The headline observations (Section 4.2.3.1):
 * every benchmark runs faster on RISC-V, the RISC-V cold run often
 * beats the x86 warm run, and the driver is the much lower dynamic
 * instruction count of the lean RISC-V software stack.
 */

#include "bench_common.hh"
#include "bench_env.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto specs = benchutil::standalonePlusShop();
    // Both ISAs as one parallel batch; job order (RISC-V sweep, then
    // x86) matches the old serial code, so the CSV cache is identical.
    const auto per_isa = benchutil::sweepConfigs(
        cache,
        {benchutil::chapter4Config(IsaId::Riscv, false),
         benchutil::chapter4Config(IsaId::Cx86, false)},
        specs);
    const auto &rv = per_isa[0];
    const auto &cx = per_isa[1];

    const std::vector<SystemConfig> platforms = {
        SystemConfig::paperConfig(IsaId::Cx86),
        SystemConfig::paperConfig(IsaId::Riscv)};
    const std::vector<std::string> seriesNames = {"x86 Cold", "x86 Warm",
                                                  "RISCV Cold", "RISCV Warm"};

    auto emit = [&](const std::string &fig, const std::string &caption,
                    const std::string &unit, auto field) {
        report::figureHeader(fig, caption, platforms);
        std::vector<report::SeriesSpec> series;
        for (const std::string &name : seriesNames)
            series.push_back({name, unit});
        std::vector<report::Row> rows;
        for (size_t i = 0; i < rv.size(); ++i) {
            rows.push_back({rv[i].name,
                            {double(field(cx[i].cold)),
                             double(field(cx[i].warm)),
                             double(field(rv[i].cold)),
                             double(field(rv[i].warm))}});
        }
        report::barFigure(series, rows);
    };

    emit("Figure 4.15", "cycles, standalone + shop, RISC-V vs x86",
         "cycles", [](const RequestStats &s) { return s.cycles; });
    emit("Figure 4.16",
         "executed instructions, standalone + shop, RISC-V vs x86",
         "insts", [](const RequestStats &s) { return s.insts; });
    emit("Figure 4.17", "L1 instruction misses, RISC-V vs x86", "misses",
         [](const RequestStats &s) { return s.l1iMisses; });
    emit("Figure 4.18", "L2 misses, RISC-V vs x86", "misses",
         [](const RequestStats &s) { return s.l2Misses; });

    // Headline check printed alongside the data.
    size_t riscv_cold_beats_x86_warm = 0;
    for (size_t i = 0; i < rv.size(); ++i) {
        if (rv[i].cold.cycles < cx[i].warm.cycles)
            ++riscv_cold_beats_x86_warm;
    }
    std::printf("\nRISC-V cold faster than x86 warm for %zu of %zu"
                " benchmarks\n", riscv_cold_beats_x86_warm, rv.size());

    // Opt-in extra panel (off by default so the figure output above
    // stays byte-identical): per-request stall-cause attribution.
    if (benchenv::flag("SVBENCH_STALLS")) {
        report::figureHeader("Stall panel",
                             "O3 stall-cause breakdown, cold + warm, "
                             "RISC-V vs x86 (percent of cycles)",
                             platforms);
        std::vector<report::Row> stall_rows;
        auto add = [&](const std::string &label, const RequestStats &s) {
            std::vector<double> vals;
            for (unsigned c = 0; c < numStallCauses; ++c)
                vals.push_back(double(s.stalls[c]));
            stall_rows.push_back({label, vals});
        };
        for (size_t i = 0; i < rv.size(); ++i) {
            add(rv[i].name + "/x86/cold", cx[i].cold);
            add(rv[i].name + "/x86/warm", cx[i].warm);
            add(rv[i].name + "/riscv/cold", rv[i].cold);
            add(rv[i].name + "/riscv/warm", rv[i].warm);
        }
        report::stallPanel(stall_rows);
    }
    return 0;
}
