/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own components:
 * decoders, cache model, TLB, branch predictor, and whole-CPU
 * simulation rates (host-side throughput, not guest metrics).
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>

#include "core/parallel.hh"
#include "core/system.hh"
#include "cpu/decode_cache.hh"
#include "gen/guestlib.hh"
#include "gen/ir.hh"
#include "guest/loader.hh"
#include "isa/cx86/assembler.hh"
#include "isa/cx86/decoder.hh"
#include "isa/riscv/assembler.hh"
#include "isa/riscv/decoder.hh"
#include "sim/rng.hh"

using namespace svb;

namespace
{

/** A small spinning compute program for CPU-rate benchmarks. */
gen::Program
computeProgram()
{
    gen::ProgramBuilder pb;
    const gen::GuestLib lib = gen::GuestLib::addTo(pb);
    auto f = pb.beginFunction("main", 0);
    const int iters = f.imm(1 << 20);
    f.callVoid(lib.burnAlu, {iters});
    const int ptr = f.newVreg(), bytes = f.imm(1 << 16),
              stride = f.imm(64);
    f.movi(ptr, int64_t(layout::heapBase));
    f.callVoid(lib.touchWrite, {ptr, bytes, stride});
    f.ret();
    pb.setEntry("main");
    return pb.take();
}

void
BM_RiscvDecode(benchmark::State &state)
{
    riscv::Assembler as;
    as.add(rv::a0, rv::a1, rv::a2);
    as.ld(rv::a0, rv::sp, 16);
    as.mul(rv::a3, rv::a0, rv::a1);
    const auto &code = as.finish();
    uint32_t words[3];
    std::memcpy(words, code.data(), 12);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(riscv::decode(words[i % 3]));
        ++i;
    }
}
BENCHMARK(BM_RiscvDecode);

void
BM_Cx86Decode(benchmark::State &state)
{
    cx86::Assembler as;
    as.add(cx::r1, cx::r2);
    as.load(cx::r3, cx::rsp, 16, 8, false);
    as.imulImm(cx::r6, 37);
    const auto &code = as.finish();
    size_t off = 0;
    const size_t offs[3] = {0, 2, 5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cx86::decode(code.data() + offs[off % 3], code.size()));
        ++off;
    }
}
BENCHMARK(BM_Cx86Decode);

void
BM_CacheAccess(benchmark::State &state)
{
    StatGroup stats("bench");
    DramCtrl dram(DramParams{}, stats);
    Cache l2(CacheParams{"l2", 512 * 1024, 4, 64, 20}, dram, stats);
    Cache l1(CacheParams{"l1", 32 * 1024, 8, 64, 2}, l2, stats);
    Rng rng(7);
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            l1.access(rng.nextBounded(1 << 22), false, ++now));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredictor(benchmark::State &state)
{
    StatGroup stats("bench");
    BranchPredictor bp(BranchPredParams{}, stats);
    StaticInst inst;
    inst.valid = true;
    inst.length = 4;
    inst.isControl = true;
    inst.isCondCtrl = true;
    inst.isDirectCtrl = true;
    inst.directOffset = -16;
    Addr pc = 0x10000;
    for (auto _ : state) {
        const auto pred = bp.predict(pc, inst, pc + 4);
        bp.update(pc, inst, (pc >> 4) & 1, pred.nextPc);
        pc += 4;
        benchmark::DoNotOptimize(pred);
    }
}
BENCHMARK(BM_BranchPredictor);

/** Whole-system simulation rate: Atomic model. */
void
BM_AtomicSimRate(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
        cfg.numCores = 1;
        System sys(cfg);
        LoadableImage image =
            gen::compileProgram(computeProgram(), IsaId::Riscv);
        loadProcess(sys.kernel(), image, "bench", 0);
        sys.scheduleIdleCores();
        state.ResumeTiming();
        const uint64_t ran = sys.run(30'000'000);
        state.counters["guest_insts/s"] = benchmark::Counter(
            double(sys.atomicCpu(0).instCount()),
            benchmark::Counter::kIsRate);
        benchmark::DoNotOptimize(ran);
    }
}
BENCHMARK(BM_AtomicSimRate)->Unit(benchmark::kMillisecond);

/**
 * Setup-phase host throughput: guest instructions retired per host
 * second on the Atomic model, across the two execution engines and
 * with functional warming on/off. Args: (isa, fast, warm). The
 * fast/slow ratio at equal warming is the superblock tier's
 * setup-phase speedup recorded in EXPERIMENTS.md; guest-visible
 * results are byte-identical either way (tests/test_cpu_differential).
 */
void
BM_AtomicHostMips(benchmark::State &state)
{
    const IsaId isa = state.range(0) == 0 ? IsaId::Riscv : IsaId::Cx86;
    const bool fast = state.range(1) != 0;
    const bool warm = state.range(2) != 0;
    uint64_t insts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = SystemConfig::paperConfig(isa);
        cfg.numCores = 1;
        cfg.fastWarm = fast;
        System sys(cfg);
        LoadableImage image =
            gen::compileProgram(computeProgram(), isa);
        loadProcess(sys.kernel(), image, "bench", 0);
        sys.scheduleIdleCores();
        sys.atomicCpu(0).setWarmingEnabled(warm);
        state.ResumeTiming();
        benchmark::DoNotOptimize(sys.run(30'000'000));
        insts += sys.atomicCpu(0).instCount();
    }
    state.counters["guest_mips"] =
        benchmark::Counter(double(insts) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AtomicHostMips)
    ->ArgNames({"isa", "fast", "warm"})
    ->Args({0, 0, 1})
    ->Args({0, 1, 1})
    ->Args({0, 0, 0})
    ->Args({0, 1, 0})
    ->Args({1, 0, 1})
    ->Args({1, 1, 1})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Unit(benchmark::kMillisecond);

/** Whole-system simulation rate: detailed O3 model. */
void
BM_O3SimRate(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = SystemConfig::paperConfig(IsaId::Riscv);
        cfg.numCores = 1;
        System sys(cfg);
        LoadableImage image =
            gen::compileProgram(computeProgram(), IsaId::Riscv);
        loadProcess(sys.kernel(), image, "bench", 0);
        sys.scheduleIdleCores();
        sys.switchCpu(0, CpuModel::O3);
        state.ResumeTiming();
        const uint64_t ran = sys.run(30'000'000);
        state.counters["guest_cycles/s"] = benchmark::Counter(
            double(sys.o3Cpu(0).cycleCount()),
            benchmark::Counter::kIsRate);
        benchmark::DoNotOptimize(ran);
    }
}
BENCHMARK(BM_O3SimRate)->Unit(benchmark::kMillisecond);

/**
 * Per-task dispatch overhead of the experiment scheduler's pool: a
 * batch of trivial tasks submitted and drained, so the time per
 * iteration is queue+wakeup cost, not work.
 */
void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    ThreadPool pool(unsigned(state.range(0)));
    std::atomic<uint64_t> sink{0};
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            pool.submit([&sink] {
                sink.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 256);
    benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

namespace
{

/** A DecodeCache over a loop of RV64 instructions at address 0. */
struct DecodeFixture
{
    DecodeFixture() : phys(1 << 20), cache(IsaId::Riscv, phys)
    {
        riscv::Assembler as;
        for (int i = 0; i < 16; ++i)
            as.add(rv::a0, rv::a1, rv::a2);
        const auto &code = as.finish();
        phys.writeBytes(0, code.data(), code.size());
    }
    PhysMemory phys;
    DecodeCache cache;
};

} // namespace

/** Same-address re-decode: the one-entry MRU fast path. */
void
BM_DecodeCacheMruHit(benchmark::State &state)
{
    DecodeFixture fx;
    fx.cache.decodeAt(0); // populate
    for (auto _ : state)
        benchmark::DoNotOptimize(&fx.cache.decodeAt(0));
}
BENCHMARK(BM_DecodeCacheMruHit);

/** Sequential fetch through a 16-instruction loop: hash-map path. */
void
BM_DecodeCacheLoopFetch(benchmark::State &state)
{
    DecodeFixture fx;
    Addr pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(&fx.cache.decodeAt(pc));
        pc = (pc + 4) & 63;
    }
}
BENCHMARK(BM_DecodeCacheLoopFetch);

/** Program compilation (IR -> machine code) throughput. */
void
BM_CompileProgram(benchmark::State &state)
{
    const auto isa = state.range(0) == 0 ? IsaId::Riscv : IsaId::Cx86;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gen::compileProgram(computeProgram(), isa));
    }
}
BENCHMARK(BM_CompileProgram)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
