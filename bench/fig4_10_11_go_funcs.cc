/**
 * @file
 * Figures 4.10 / 4.11: cycles and L2 misses for every Go-tier
 * function on the RISC-V simulated system. The memcached-dependent
 * hotel subgroup stands an order of magnitude above the rest in L2
 * misses (Section 4.2.1.2).
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    // The Go set mixes store-free and store-backed functions, so each
    // job carries its own cluster configuration.
    std::vector<SweepJob> jobs;
    for (const FunctionSpec &spec : workloads::goFunctions()) {
        jobs.push_back({benchutil::chapter4Config(IsaId::Riscv,
                                                  spec.usesDb),
                        spec, &workloads::workloadImpl(spec.workload)});
    }
    const std::vector<FunctionResult> results =
        parallelSweep(cache, jobs);

    report::figureHeader("Figure 4.10",
                         "cycles, all Go functions, RISC-V (cold/warm)",
                         {SystemConfig::paperConfig(IsaId::Riscv)});
    std::vector<report::Row> cyc_rows;
    for (const FunctionResult &res : results) {
        cyc_rows.push_back({res.name,
                            {double(res.cold.cycles),
                             double(res.warm.cycles)}});
    }
    report::barFigure({{"RISCV Cold", "cycles"}, {"RISCV Warm", "cycles"}},
                      cyc_rows);

    report::figureHeader("Figure 4.11",
                         "L2 misses, all Go functions, RISC-V (cold/warm)",
                         {SystemConfig::paperConfig(IsaId::Riscv)});
    std::vector<report::Row> l2_rows;
    for (const FunctionResult &res : results) {
        l2_rows.push_back({res.name,
                           {double(res.cold.l2Misses),
                            double(res.warm.l2Misses)}});
    }
    report::barFigure(
        {{"RISCV Cold", "L2 misses"}, {"RISCV Warm", "L2 misses"}}, l2_rows);
    return 0;
}
