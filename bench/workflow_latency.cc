/**
 * @file
 * Workflow extension: end-to-end latency and critical-path stage
 * attribution for composed serverless functions.
 *
 * SeBS-Flow (PAPERS.md) benchmarks serverless *workflows* and shows
 * the end-to-end picture is governed by stage scheduling and
 * inter-function payload transfer, not per-function service time
 * alone. This bench drives the three canonical workflow families —
 * a 4-stage chain, an 8-wide fan-out/fan-in, and a 4x2 map-reduce —
 * over the calibrated Go mix, sweeping (ISA x node count x stage
 * placement). For every point it reports the end-to-end percentiles,
 * the local/remote transfer split, and the per-stage critical-path
 * attribution: which stages the end-to-end latency is actually spent
 * in, computed by walking each completed workflow's last-finishing
 * determining-predecessor chain (the per-stage shares sum to the
 * end-to-end time exactly).
 *
 * Deterministic: all randomness comes from the scenario seed's
 * StreamId substreams and attribution shares are cached as permil
 * integers, so every table and the fingerprint block are
 * byte-identical at any SVBENCH_JOBS value, fresh or cached.
 */

#include <cstdio>
#include <sstream>

#include "bench_common.hh"
#include "load/names.hh"
#include "load/workflow.hh"

using namespace svb;

namespace
{

std::vector<load::LoadMixEntry>
goMix()
{
    std::vector<load::LoadMixEntry> mix;
    for (const char *fn : {"fibonacci-go", "aes-go", "auth-go"}) {
        for (const FunctionSpec &spec : workloads::standaloneSuite()) {
            if (spec.name == fn)
                mix.push_back(
                    {spec, &workloads::workloadImpl(spec.workload), 1.0});
        }
    }
    return mix;
}

/** 64 KiB inter-stage payloads: big enough that a cross-node hop
 *  (60 us base + 20 us copy) rivals a warm service time, so placement
 *  actually moves the tables. */
constexpr uint64_t kPayloadBytes = 64 * 1024;

/** The three canonical shapes over the 3-function mix (fns cycled
 *  across stages, so the chain is fib->aes->auth->fib and so on). */
std::vector<load::WorkflowSpec>
shapes()
{
    const std::vector<uint32_t> fns = {0, 1, 2};
    return {
        load::chainSpec("chain-4", 4, fns, kPayloadBytes),
        load::fanOutSpec("fanout-8", 8, fns, kPayloadBytes),
        load::mapReduceSpec("map-reduce", 4, 2, fns, kPayloadBytes),
    };
}

const std::vector<unsigned> nodeCounts = {1, 4};

load::WorkflowSpec
withPlacement(load::WorkflowSpec spec, load::StagePlacement placement)
{
    for (load::StageSpec &st : spec.stages)
        st.placement = placement;
    return spec;
}

load::WorkflowScenario
baseScenario(IsaId isa)
{
    load::WorkflowScenario s;
    s.cluster = benchutil::chapter4Config(isa, false);
    s.functions = goMix();
    s.arrival.kind = load::ArrivalKind::Poisson;
    // 500 workflows/s of multi-task DAGs: thousands of stage tasks
    // per second against 2 slots per node, so queueing and placement
    // both matter without saturating the single-node fleet.
    s.arrival.ratePerSec = 500.0;
    s.pool = {load::KeepAlivePolicy::FixedTtl, 2, 50'000'000};
    s.invocations = 300;
    s.seed = 67;
    return s;
}

std::string
scenarioName(const std::string &shape, IsaId isa, unsigned nodes,
             load::StagePlacement placement)
{
    std::ostringstream name;
    name << "go-mix3;wflow;" << shape << ";" << isaName(isa) << ";nodes"
         << nodes << ";" << load::stagePlacementName(placement)
         << ";rate500;n300;seed67";
    return name.str();
}

} // namespace

int
main()
{
    ResultCache cache;

    const std::vector<load::WorkflowSpec> dags = shapes();
    const std::vector<load::StagePlacement> placements = {
        load::StagePlacement::Inherit,
        load::StagePlacement::PayloadAffinity,
    };

    std::vector<load::WorkflowScenario> scenarios;
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (const load::WorkflowSpec &dag : dags) {
            for (unsigned nodes : nodeCounts) {
                for (load::StagePlacement placement : placements) {
                    load::WorkflowScenario s = baseScenario(isa);
                    s.name =
                        scenarioName(dag.name, isa, nodes, placement);
                    s.dag = withPlacement(dag, placement);
                    s.fleet.nodes = nodes;
                    scenarios.push_back(std::move(s));
                }
            }
        }
    }
    const std::vector<load::WorkflowResult> results =
        load::workflowSweep(cache, scenarios);

    // --- Table 1: end-to-end latency and transfer split per ISA --------
    const size_t perShape = nodeCounts.size() * placements.size();
    const size_t perIsa = dags.size() * perShape;
    for (size_t isaIdx = 0; isaIdx < 2; ++isaIdx) {
        const IsaId isa = isaIdx == 0 ? IsaId::Riscv : IsaId::Cx86;
        report::figureHeader(
            "Workflow extension",
            std::string("end-to-end workflow latency, ") + isaName(isa) +
                " (Poisson 500 workflows/s, 64 KiB inter-stage "
                "payloads, 2 slots/node, 300 workflow instances)",
            {SystemConfig::paperConfig(isa)});

        std::vector<report::Row> rows;
        for (size_t i = isaIdx * perIsa; i < (isaIdx + 1) * perIsa; ++i) {
            const load::WorkflowResult &res = results[i];
            const uint64_t hops =
                res.transfersLocal + res.transfersRemote;
            std::ostringstream label;
            label << scenarios[i].dag.name << "/n" << res.nodes << "/"
                  << load::stagePlacementName(
                         scenarios[i].dag.stages[0].placement);
            rows.push_back(
                {label.str(),
                 {double(res.p50Ns) / 1000.0, double(res.p99Ns) / 1000.0,
                  double(res.goodP99Ns) / 1000.0, res.availabilityPct(),
                  hops ? 100.0 * double(res.transfersRemote) /
                             double(hops)
                       : 0.0,
                  double(res.transferNs) / 1e6}});
        }
        report::table({"workflow", "e2e p50 us", "e2e p99 us",
                       "good p99 us", "avail %", "remote hop %",
                       "xfer total ms"},
                      rows);
    }

    // --- Table 2: critical-path attribution per stage ------------------
    // Where the end-to-end time is spent: each stage's share of the
    // summed critical-path time over all completed workflows, from
    // the cached permil integers (fresh and cached runs print the
    // same bytes). Shown for RISC-V on the larger fleet, where
    // placement changes the answer.
    for (size_t shapeIdx = 0; shapeIdx < dags.size(); ++shapeIdx) {
        report::figureHeader(
            "Workflow extension",
            std::string("critical-path stage attribution, ") +
                dags[shapeIdx].name +
                ", riscv64, 4 nodes (share of summed critical-path "
                "time; a chain charges every stage, a fan-out charges "
                "its slowest worker)",
            {SystemConfig::paperConfig(IsaId::Riscv)});
        std::vector<report::Row> rows;
        for (load::StagePlacement placement : placements) {
            // riscv64 block, this shape, nodes=4.
            const size_t idx = shapeIdx * perShape +
                               placements.size() * 1 +
                               (placement ==
                                        load::StagePlacement::
                                            PayloadAffinity
                                    ? 1
                                    : 0);
            const load::WorkflowResult &res = results[idx];
            for (size_t st = 0; st < res.critPermil.size(); ++st) {
                std::ostringstream label;
                label << load::stagePlacementName(placement) << "/"
                      << dags[shapeIdx].stages[st].name;
                rows.push_back({label.str(),
                                {double(st),
                                 double(res.critPermil[st]) / 10.0}});
            }
        }
        report::table({"placement/stage", "stage idx", "crit-path %"},
                      rows);
    }

    // The determinism probe: distribution and attribution
    // fingerprints, independent of SVBENCH_JOBS and cache state.
    std::printf(
        "\nDeterminism fingerprints (stable across SVBENCH_JOBS):\n");
    for (const load::WorkflowResult &res : results)
        std::printf("  %-64s histo=%016lx crit=%016lx\n",
                    res.scenario.c_str(),
                    (unsigned long)res.histoFingerprint,
                    (unsigned long)res.critFingerprint);
    return 0;
}
