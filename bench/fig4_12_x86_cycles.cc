/**
 * @file
 * Figure 4.12: number of cycles for the standalone functions and the
 * online-shop application on the x86 (CX86) simulated system. The
 * Python functions' cold runs are ~10x their warm runs, except the
 * emailservice (see Fig 4.13).
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto specs = benchutil::standalonePlusShop();
    const auto results = benchutil::sweep(cache, IsaId::Cx86, specs, false);

    report::figureHeader(
        "Figure 4.12",
        "cycles, standalone functions + online shop, x86 (cold/warm)",
        {SystemConfig::paperConfig(IsaId::Cx86)});

    std::vector<report::Row> rows;
    for (const FunctionResult &res : results) {
        rows.push_back({res.name,
                        {double(res.cold.cycles), double(res.warm.cycles)}});
    }
    report::barFigure({{"x86 Cold", "cycles"}, {"x86 Warm", "cycles"}},
                      rows);
    return 0;
}
