/**
 * @file
 * Fleet extension: capacity curves across node count and routing
 * policy, RISC-V vs x86.
 *
 * The load and resilience extensions drive a single simulated host;
 * this bench scales the same three-function Go mix out over a fleet
 * of nodes behind the cluster scheduler (load/fleet.hh) and sweeps
 * (ISA x node count x routing policy x offered rate). Capacity is the
 * highest rate of the ladder whose goodput p99 stays under the SLO —
 * five times the lightly-loaded single-node goodput p50, derived per
 * ISA from the sweep itself so the bar tracks the hardware. Two
 * companion tables exercise the rest of the fleet machinery: the
 * goodput/error split when one node of four crashes mid-run (retries
 * drain onto the survivors), and the reactive autoscaler riding a
 * bursty arrival process from one active node to its ceiling. A
 * fourth sweep builds class-structured fleets (FleetSpec) — all
 * RISC-V, all x86 at 2 GHz, and a 2+2 mixed-ISA cluster — and
 * reports capacity, capacity-per-watt and capacity-per-dollar under
 * the class-aware cost/power routing policies.
 *
 * Deterministic: routing draws come from a dedicated seed-derived
 * substream (and the least-loaded default draws nothing), so every
 * number and the fingerprint block are byte-identical at any
 * SVBENCH_JOBS value.
 */

#include <cstdio>
#include <sstream>

#include "bench_common.hh"
#include "bench_env.hh"
#include "load/load_runner.hh"
#include "load/names.hh"

using namespace svb;

namespace
{

std::vector<load::LoadMixEntry>
goMix()
{
    std::vector<load::LoadMixEntry> mix;
    for (const char *fn : {"fibonacci-go", "aes-go", "auth-go"}) {
        for (const FunctionSpec &spec : workloads::standaloneSuite()) {
            if (spec.name == fn)
                mix.push_back(
                    {spec, &workloads::workloadImpl(spec.workload), 1.0});
        }
    }
    return mix;
}

const std::vector<unsigned> nodeCounts = {1, 2, 4};
const std::vector<load::RoutingPolicy> policies = {
    load::RoutingPolicy::LeastLoaded,
    load::RoutingPolicy::PowerOfTwo,
    load::RoutingPolicy::Random,
    load::RoutingPolicy::Affinity,
};
// The ladder must actually saturate the smallest fleet: two slots per
// node at the ~200 us calibrated Go-mix service time serve on the
// order of 10k rps, so the top rung is well past a one-node fleet's
// capacity and below a four-node fleet's.
const std::vector<double> rates = {2000.0, 5000.0, 10000.0, 20000.0,
                                   40000.0};

/** Scenario skeleton shared by every sweep point. */
load::LoadScenario
baseScenario(IsaId isa)
{
    load::LoadScenario s;
    s.cluster = benchutil::chapter4Config(isa, false);
    s.mix = goMix();
    s.arrival.kind = load::ArrivalKind::Poisson;
    // Two slots per node: capacity comes from the fleet, not from one
    // big host, so the node-count axis actually bites.
    s.pool = {load::KeepAlivePolicy::FixedTtl, 2, 50'000'000};
    s.invocations = 1000;
    s.seed = 53;
    return s;
}

std::string
capacityName(IsaId isa, unsigned nodes, load::RoutingPolicy pol,
             double rate)
{
    std::ostringstream name;
    name << "go-mix3;fleet;" << isaName(isa) << ";nodes" << nodes << ";"
         << load::routingPolicyName(pol) << ";rate" << unsigned(rate)
         << ";n1000;seed53";
    return name.str();
}

} // namespace

int
main()
{
    ResultCache cache;

    // --- Sweep 1: capacity curves (ISA x nodes x policy x rate) --------
    std::vector<load::LoadScenario> scenarios;
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (unsigned nodes : nodeCounts) {
            for (load::RoutingPolicy pol : policies) {
                for (double rate : rates) {
                    load::LoadScenario s = baseScenario(isa);
                    s.name = capacityName(isa, nodes, pol, rate);
                    s.arrival.ratePerSec = rate;
                    s.fleet.nodes = nodes;
                    s.fleet.routing = pol;
                    scenarios.push_back(std::move(s));
                }
            }
        }
    }
    const std::vector<load::LoadResult> results =
        load::loadSweep(cache, scenarios);

    const size_t perPolicy = rates.size();
    const size_t perNodes = policies.size() * perPolicy;
    const size_t perIsa = nodeCounts.size() * perNodes;
    for (size_t isaIdx = 0; isaIdx < 2; ++isaIdx) {
        const IsaId isa = isaIdx == 0 ? IsaId::Riscv : IsaId::Cx86;
        // The SLO bar: 5x the goodput p50 of the lightly-loaded
        // single-node least-loaded point (the first rate of the
        // ladder), so queueing has to inflate the tail five-fold
        // before a rate stops counting as served.
        const uint64_t sloNs = 5 * results[isaIdx * perIsa].goodP50Ns;

        report::figureHeader(
            "Fleet extension",
            std::string("capacity vs node count and routing policy, ") +
                isaName(isa) +
                " (Poisson arrivals, 3-function Go mix, 2 slots/node, "
                "1000 invocations; capacity = max rate with good p99 "
                "under 5x the unloaded p50)",
            {SystemConfig::paperConfig(isa)});

        std::vector<report::Row> rows;
        for (size_t nIdx = 0; nIdx < nodeCounts.size(); ++nIdx) {
            for (size_t pIdx = 0; pIdx < policies.size(); ++pIdx) {
                const size_t base =
                    isaIdx * perIsa + nIdx * perNodes + pIdx * perPolicy;
                // Highest rate of the ladder still under the SLO; the
                // reported tail/utilisation columns describe that
                // capacity point.
                size_t cap = 0;
                for (size_t r = 0; r < rates.size(); ++r) {
                    if (results[base + r].goodP99Ns <= sloNs)
                        cap = r;
                }
                const load::LoadResult &at = results[base + cap];
                std::ostringstream label;
                label << "n" << nodeCounts[nIdx] << "/"
                      << load::routingPolicyName(policies[pIdx]);
                const double n =
                    double(std::max<uint64_t>(1, at.invocations));
                rows.push_back(
                    {label.str(),
                     {rates[cap], double(at.goodP50Ns) / 1000.0,
                      double(at.goodP99Ns) / 1000.0,
                      at.throughputRps,
                      100.0 * at.fleetUtilisation,
                      100.0 * double(at.coldStarts) / n}});
            }
        }
        report::table({"fleet", "capacity rps", "good p50 us",
                       "good p99 us", "tput rps", "util %", "cold %"},
                      rows);
    }

    // --- Sweep 2: goodput/error split when a node crashes --------------
    // Composition probe: node-level crashes/partitions on top of the
    // resilience extension's request-level fault preset, with and
    // without client retries. The 8k rps rate keeps attempts in
    // flight, so the node crash actually converts some of them.
    std::vector<load::LoadScenario> crashScenarios;
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (bool withRetry : {false, true}) {
            load::LoadScenario s = baseScenario(isa);
            std::ostringstream name;
            name << "go-mix3;fleet-crash;" << isaName(isa) << ";nodes4;"
                 << (withRetry ? "retry3" : "no-retry")
                 << ";rate8000;n1000;seed53";
            s.name = name.str();
            s.arrival.ratePerSec = 8000.0;
            s.fleet.nodes = 4;
            s.fault = load::defaultFaultPreset();
            if (withRetry) {
                s.retry.maxAttempts = 3;
                s.retry.backoffBaseNs = 500'000;
                s.retry.backoffCapNs = 10'000'000;
            }
            // The 1000-invocation stream spans ~125 ms at 8k rps:
            // node 1 crashes a quarter of the way in, node 2 is
            // partitioned for the same 30 ms window, so half the
            // fleet routes around while retries drain onto it.
            s.fleet.nodeFaults.push_back(
                {load::NodeFaultEvent::Kind::Crash, 1, 30'000'000,
                 30'000'000});
            s.fleet.nodeFaults.push_back(
                {load::NodeFaultEvent::Kind::Partition, 2, 30'000'000,
                 30'000'000});
            crashScenarios.push_back(std::move(s));
        }
    }
    const std::vector<load::LoadResult> crashResults =
        load::loadSweep(cache, crashScenarios);

    report::figureHeader(
        "Fleet extension",
        "goodput/error split with one node of four crashing (plus a "
        "partitioned neighbour) for 30 ms at t=30ms, Poisson 8000 rps, "
        "request-level fault preset on top",
        {SystemConfig::paperConfig(IsaId::Riscv),
         SystemConfig::paperConfig(IsaId::Cx86)});
    {
        std::vector<report::Row> rows;
        for (const load::LoadResult &res : crashResults) {
            rows.push_back(
                {res.scenario,
                 {res.availabilityPct(), double(res.succeeded),
                  double(res.failedInvocations), double(res.crashes),
                  double(res.retries),
                  double(res.goodP99Ns) / 1000.0,
                  double(res.errP99Ns) / 1000.0}});
        }
        report::table({"scenario", "avail %", "good", "failed", "crashes",
                       "retries", "good p99 us", "err p99 us"},
                      rows);
    }

    // --- Sweep 3: reactive autoscaler riding a burst --------------------
    std::vector<load::LoadScenario> scaleScenarios;
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        load::LoadScenario s = baseScenario(isa);
        std::ostringstream name;
        name << "go-mix3;fleet-scale;" << isaName(isa)
             << ";nodes6min1;burst6000;n2000;seed53";
        s.name = name.str();
        // 2 ms on-phases at 8x the average rate swamp the single
        // active node's two slots, so in-flight queueing builds up
        // and the 10 ms evaluation cadence scales the fleet out;
        // the 50 ms idle threshold retires nodes between bursts.
        s.arrival.kind = load::ArrivalKind::Burst;
        s.arrival.ratePerSec = 6000.0;
        s.arrival.burstFactor = 8.0;
        s.arrival.burstPeriodNs = 20'000'000;
        s.arrival.burstDuty = 0.1;
        s.invocations = 2000;
        s.fleet.nodes = 6;
        s.fleet.autoscaler.enabled = true;
        s.fleet.autoscaler.minNodes = 1;
        s.fleet.autoscaler.evalPeriodNs = 10'000'000;
        s.fleet.autoscaler.targetInFlightPerNode = 2.0;
        s.fleet.autoscaler.scaleUpLagNs = 5'000'000;
        s.fleet.autoscaler.scaleDownIdleNs = 50'000'000;
        scaleScenarios.push_back(std::move(s));
    }
    const std::vector<load::LoadResult> scaleResults =
        load::loadSweep(cache, scaleScenarios);

    report::figureHeader(
        "Fleet extension",
        "reactive autoscaler under a bursty arrival process (6-node "
        "ceiling, 1-node floor, burst 6000 rps average)",
        {SystemConfig::paperConfig(IsaId::Riscv),
         SystemConfig::paperConfig(IsaId::Cx86)});
    {
        std::vector<report::Row> rows;
        for (const load::LoadResult &res : scaleResults) {
            rows.push_back(
                {res.scenario,
                 {double(res.maxActiveNodes),
                  double(res.goodP50Ns) / 1000.0,
                  double(res.goodP99Ns) / 1000.0,
                  100.0 * res.fleetUtilisation,
                  double(res.coldStarts)}});
        }
        report::table({"scenario", "peak nodes", "good p50 us",
                       "good p99 us", "util %", "cold starts"},
                      rows);
    }

    // --- Sweep 4: node-class fleets — mixed RISC-V + x86 ----------------
    // The figure the paper doesn't have: capacity AND capacity-per-watt
    // for class-structured fleets (load/fleet.hh FleetSpec). Each class
    // carries its own calibrated service model — the x86 class is
    // clocked at 2 GHz, so its nodes really are faster per request —
    // plus cost/power weights sized like a small RISC-V SBC (~4 W,
    // cheap) vs a server-class x86 host (~18 W, 3x the hourly price).
    // The homogeneous fleets bracket the 2+2 mix, and the class-aware
    // policies (cost / power argmin; draw-free) show what routing on
    // the weights does to throughput-per-watt.
    load::NodeClass rvClass =
        load::NodeClass::forIsa("rv64sbc", IsaId::Riscv);
    rvClass.costPerHour = 1.0;
    rvClass.watts = 4.0;
    load::NodeClass x86Class =
        load::NodeClass::forIsa("x86srv", IsaId::Cx86);
    x86Class.system.clockMHz = 2000;
    x86Class.costPerHour = 3.0;
    x86Class.watts = 18.0;

    struct FleetMix {
        const char *name;
        load::FleetSpec spec;
    };
    std::vector<FleetMix> fleets(3);
    fleets[0].name = "rv4";
    fleets[0].spec.groups = {{rvClass, 4}};
    fleets[1].name = "x864";
    fleets[1].spec.groups = {{x86Class, 4}};
    fleets[2].name = "rv2x862";
    fleets[2].spec.groups = {{rvClass, 2}, {x86Class, 2}};

    // Routing policies under test, overridable from the environment
    // (e.g. SVBENCH_FLEET_POLICIES=least-loaded,p2c,cost). Parsed
    // through the shared name round-trip, so the accepted names are
    // exactly the ones the tables print.
    std::vector<load::RoutingPolicy> classPolicies;
    for (const std::string &tok : benchenv::tokenList(
             "SVBENCH_FLEET_POLICIES", "least-loaded,cost,power")) {
        load::RoutingPolicy pol;
        if (!load::parseRoutingPolicy(tok, pol))
            svb_panic("SVBENCH_FLEET_POLICIES: unknown routing policy '",
                      tok, "'");
        classPolicies.push_back(pol);
    }

    std::vector<load::LoadScenario> mixScenarios;
    for (const FleetMix &fm : fleets) {
        for (load::RoutingPolicy pol : classPolicies) {
            for (double rate : rates) {
                // The base cluster is the row-key platform; per-class
                // calibrations ride their own class-tagged rows.
                load::LoadScenario s = baseScenario(IsaId::Riscv);
                std::ostringstream name;
                name << "go-mix3;fleetmix;" << fm.name << ";"
                     << load::routingPolicyName(pol) << ";rate"
                     << unsigned(rate) << ";n1000;seed53";
                s.name = name.str();
                s.arrival.ratePerSec = rate;
                s.fleet.spec = fm.spec;
                s.fleet.routing = pol;
                mixScenarios.push_back(std::move(s));
            }
        }
    }
    const std::vector<load::LoadResult> mixResults =
        load::loadSweep(cache, mixScenarios);

    report::figureHeader(
        "Fleet extension",
        "node-class fleets: capacity and capacity-per-watt, all-RISC-V "
        "vs all-x86 (2 GHz) vs 2+2 mixed, class-aware routing "
        "(Poisson, 3-function Go mix, 2 slots/node, 1000 invocations; "
        "common SLO = 5x the unloaded p50 of the all-RISC-V fleet)",
        {SystemConfig::paperConfig(IsaId::Riscv),
         SystemConfig::paperConfig(IsaId::Cx86)});
    {
        // One SLO bar for every fleet — capacity-per-watt is only
        // comparable against a common latency target. Anchored at the
        // all-RISC-V fleet's first-policy lowest-rate point.
        const uint64_t mixSloNs = 5 * mixResults[0].goodP50Ns;
        std::vector<report::Row> rows;
        for (size_t fIdx = 0; fIdx < fleets.size(); ++fIdx) {
            for (size_t pIdx = 0; pIdx < classPolicies.size(); ++pIdx) {
                const size_t base =
                    (fIdx * classPolicies.size() + pIdx) * rates.size();
                size_t cap = 0;
                for (size_t r = 0; r < rates.size(); ++r) {
                    if (mixResults[base + r].goodP99Ns <= mixSloNs)
                        cap = r;
                }
                const load::LoadResult &at = mixResults[base + cap];
                const double watts = double(at.fleetPowerMw) / 1000.0;
                const double dollarsPerHour =
                    double(at.fleetCostMilli) / 1000.0;
                std::ostringstream label;
                label << fleets[fIdx].name << "/"
                      << load::routingPolicyName(classPolicies[pIdx]);
                rows.push_back(
                    {label.str(),
                     {rates[cap], watts, rates[cap] / watts,
                      rates[cap] / dollarsPerHour,
                      double(at.goodP99Ns) / 1000.0,
                      100.0 * at.fleetUtilisation}});
            }
        }
        report::table({"fleet/policy", "capacity rps", "fleet W",
                       "rps per W", "rps per $/h", "good p99 us",
                       "util %"},
                      rows);
    }

    // The determinism probe: per-scenario fingerprints over the full
    // and goodput-only distributions, independent of SVBENCH_JOBS.
    std::printf("\nDeterminism fingerprints (stable across SVBENCH_JOBS):\n");
    auto printFps = [](const std::vector<load::LoadResult> &rs) {
        for (const load::LoadResult &res : rs)
            std::printf("  %-60s histo=%016lx good=%016lx\n",
                        res.scenario.c_str(),
                        (unsigned long)res.histoFingerprint,
                        (unsigned long)res.goodFingerprint);
    };
    printFps(results);
    printFps(crashResults);
    printFps(scaleResults);
    printFps(mixResults);
    return 0;
}
