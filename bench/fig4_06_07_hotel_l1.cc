/**
 * @file
 * Figures 4.6 / 4.7: L1 instruction+data cache miss counts for the
 * hotel application on the RISC-V simulated system, after cold and
 * after warm execution.
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto results = benchutil::sweep(cache, IsaId::Riscv,
                                          workloads::hotelSuite(), true);

    report::figureHeader("Figure 4.6",
                         "hotel L1 cache misses, RISC-V, cold execution",
                         {SystemConfig::paperConfig(IsaId::Riscv)});
    std::vector<report::Row> cold_rows;
    for (const FunctionResult &res : results) {
        cold_rows.push_back({res.name,
                             {double(res.cold.l1iMisses),
                              double(res.cold.l1dMisses)}});
    }
    report::barFigure({{"L1 Instruction", "misses"}, {"L1 Data", "misses"}},
                      cold_rows);

    report::figureHeader("Figure 4.7",
                         "hotel L1 cache misses, RISC-V, warm execution",
                         {SystemConfig::paperConfig(IsaId::Riscv)});
    std::vector<report::Row> warm_rows;
    for (const FunctionResult &res : results) {
        warm_rows.push_back({res.name,
                             {double(res.warm.l1iMisses),
                              double(res.warm.l1dMisses)}});
    }
    report::barFigure({{"L1 Instruction", "misses"}, {"L1 Data", "misses"}},
                      warm_rows);
    return 0;
}
