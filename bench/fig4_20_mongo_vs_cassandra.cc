/**
 * @file
 * Figure 4.20: MongoDB vs Cassandra as the hotel application's
 * backing store, measured in functional-emulation mode (the paper's
 * QEMU study — MongoDB could not be booted under gem5 there either),
 * x86 ISA, request latency in ns. MongoDB's cold requests are
 * distinctly faster; warm requests are comparable.
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    std::vector<report::Row> rows;
    for (const FunctionSpec &spec : workloads::hotelSuite()) {
        const WorkloadImpl &impl = workloads::workloadImpl(spec.workload);
        const EmuResult cass = cache.emulated(
            benchutil::chapter4Config(IsaId::Cx86, true,
                                      db::DbKind::Cassandra),
            spec, impl);
        const EmuResult mongo = cache.emulated(
            benchutil::chapter4Config(IsaId::Cx86, true,
                                      db::DbKind::Mongo),
            spec, impl);
        rows.push_back({spec.name,
                        {double(cass.coldNs), double(cass.warmNs),
                         double(mongo.coldNs), double(mongo.warmNs)}});
    }

    report::figureHeader(
        "Figure 4.20",
        "hotel latency with Cassandra vs MongoDB, emulation mode, x86 (ns)",
        {SystemConfig::paperConfig(IsaId::Cx86)});
    report::barFigure({{"Cass Cold", "ns"},
                       {"Cass Warm", "ns"},
                       {"Mongo Cold", "ns"},
                       {"Mongo Warm", "ns"}},
                      rows);
    return 0;
}
