/**
 * @file
 * Figures 4.8 / 4.9: percentage split of L1 misses between the
 * instruction and data caches for the hotel application on RISC-V.
 * The paper observes ~60% data misses cold and ~30% warm.
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto results = benchutil::sweep(cache, IsaId::Riscv,
                                          workloads::hotelSuite(), true);

    report::figureHeader("Figure 4.8",
                         "hotel L1 miss split (I vs D), RISC-V, cold",
                         {SystemConfig::paperConfig(IsaId::Riscv)});
    std::vector<report::Row> cold_rows;
    for (const FunctionResult &res : results) {
        cold_rows.push_back({res.name,
                             {double(res.cold.l1iMisses),
                              double(res.cold.l1dMisses)}});
    }
    const std::vector<report::SeriesSpec> l1_series = {
        {"L1 Instruction", ""}, {"L1 Data", ""}};
    report::stackedPercentFigure(l1_series, cold_rows);

    report::figureHeader("Figure 4.9",
                         "hotel L1 miss split (I vs D), RISC-V, warm",
                         {SystemConfig::paperConfig(IsaId::Riscv)});
    std::vector<report::Row> warm_rows;
    for (const FunctionResult &res : results) {
        warm_rows.push_back({res.name,
                             {double(res.warm.l1iMisses),
                              double(res.warm.l1dMisses)}});
    }
    report::stackedPercentFigure(l1_series, warm_rows);
    return 0;
}
