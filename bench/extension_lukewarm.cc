/**
 * @file
 * Extension study: lukewarm execution (paper Section 2.1).
 *
 * The thesis recounts (citing Schall et al.) that interleaving other
 * functions between a function's invocations thrashes caches and
 * microarchitectural state, so "every invocation behaves as if it was
 * called for the first time". This bench co-locates an interferer on
 * the server core and compares the function's isolated warm request
 * against the interleaved (lukewarm) one.
 */

#include "bench_common.hh"

using namespace svb;

namespace
{

FunctionSpec
pick(const std::string &name)
{
    for (const FunctionSpec &spec : workloads::allFunctions()) {
        if (spec.name == name)
            return spec;
    }
    return {};
}

} // namespace

int
main()
{
    report::figureHeader(
        "Extension: lukewarm execution",
        "warm vs interleaved request, RISC-V (Section 2.1)",
        {SystemConfig::paperConfig(IsaId::Riscv)});

    const std::pair<const char *, const char *> pairs[] = {
        {"fibonacci-go", "aes-python"},
        {"aes-go", "fibonacci-nodejs"},
        {"currency-nodejs", "fibonacci-python"},
    };

    std::printf("%-18s %-18s %12s %12s %8s %14s\n", "function",
                "interferer", "warm cyc", "lukewarm cyc", "slowdown",
                "L1I miss w/lw");
    for (const auto &[fn, interferer] : pairs) {
        ClusterConfig cfg = benchutil::chapter4Config(IsaId::Riscv, false);
        ExperimentRunner runner(cfg);
        const FunctionSpec spec = pick(fn), other = pick(interferer);
        RunSpec rs;
        rs.mode = RunMode::Lukewarm;
        rs.spec = spec;
        rs.impl = &workloads::workloadImpl(spec.workload);
        rs.platform = cfg;
        rs.options.interferer = &other;
        rs.options.interfererImpl =
            &workloads::workloadImpl(other.workload);
        const LukewarmResult res = std::get<LukewarmResult>(runner.run(rs));
        if (!res.ok) {
            std::printf("%-18s %-18s FAILED\n", fn, interferer);
            continue;
        }
        std::printf("%-18s %-18s %12lu %12lu %7.2fx %6lu/%-6lu\n", fn,
                    interferer, (unsigned long)res.warm.cycles,
                    (unsigned long)res.lukewarm.cycles,
                    double(res.lukewarm.cycles) /
                        double(std::max<uint64_t>(res.warm.cycles, 1)),
                    (unsigned long)res.warm.l1iMisses,
                    (unsigned long)res.lukewarm.l1iMisses);
    }
    std::printf("\nInterleaving a second function on the core thrashes"
                " the caches between\ninvocations: the 'warm' request"
                " pays cold-class misses again.\n");
    return 0;
}
