/**
 * @file
 * One place for the SVBENCH_* environment knobs the figure/table
 * binaries read directly (the library-level knobs — SVBENCH_JOBS,
 * SVBENCH_FRESH, SVBENCH_RESULTS, ... — are parsed where they are
 * consumed, in src/core and src/load).
 *
 * Benches splice env-provided tokens into scenario names, and
 * scenario names are ResultCache row-key components where ',', '|',
 * '=' and whitespace are structural metacharacters — a stray comma
 * would silently corrupt the CSV cache. Every helper that can feed a
 * row key therefore validates its tokens and panics on a bad value
 * instead of caching garbage.
 */

#ifndef SVB_BENCH_BENCH_ENV_HH
#define SVB_BENCH_BENCH_ENV_HH

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace svb::benchenv
{

/** True when @p name is set to a non-empty value other than "0";
 *  "FLAG=0" reads as an explicit off, matching SVBENCH_FASTWARM. */
inline bool
flag(const char *name)
{
    const char *env = std::getenv(name);
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

/** The raw value of @p name, or @p fallback when unset/empty. */
inline std::string
value(const char *name, const std::string &fallback)
{
    const char *env = std::getenv(name);
    return (env != nullptr && env[0] != '\0') ? std::string(env)
                                              : fallback;
}

/** True when @p tok is safe to splice into a cache row key: no
 *  ',' / '|' / '=' metacharacters and no whitespace. */
inline bool
validToken(const std::string &tok)
{
    return !tok.empty() &&
           tok.find_first_of(",|= \t\r\n") == std::string::npos;
}

/**
 * A single scenario-name token from @p name (or @p fallback when
 * unset). Panics on metacharacters rather than letting a malformed
 * token reach the ResultCache key space.
 */
inline std::string
scenarioToken(const char *name, const std::string &fallback)
{
    const std::string tok = value(name, fallback);
    if (!validToken(tok))
        svb_panic(name, ": '", tok, "' is not a valid scenario token "
                  "(no ',', '|', '=' or whitespace)");
    return tok;
}

/**
 * A comma-separated token list from @p name (or @p fallback when
 * unset), each element validated like scenarioToken(). Empty elements
 * ("a,,b", trailing comma) panic too.
 */
inline std::vector<std::string>
tokenList(const char *name, const std::string &fallback)
{
    const std::string raw = value(name, fallback);
    std::vector<std::string> toks;
    size_t start = 0;
    while (true) {
        const size_t comma = raw.find(',', start);
        const std::string tok = raw.substr(
            start, comma == std::string::npos ? comma : comma - start);
        if (!validToken(tok))
            svb_panic(name, ": bad list element '", tok, "' in '", raw,
                      "'");
        toks.push_back(tok);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return toks;
}

} // namespace svb::benchenv

#endif // SVB_BENCH_BENCH_ENV_HH
