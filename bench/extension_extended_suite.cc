/**
 * @file
 * Extension: the thesis' first future-work item — port the remaining
 * vSwarm applications. Two more standalone workloads (compression,
 * jsonserdes), in all three runtimes, run through the same cold/warm
 * protocol as Figure 4.4.
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto results = benchutil::sweep(cache, IsaId::Riscv,
                                          workloads::extendedSuite(),
                                          false);

    report::figureHeader(
        "Extension: extended suite",
        "cycles, additionally ported workloads, RISC-V (cold/warm)",
        {SystemConfig::paperConfig(IsaId::Riscv)});

    std::vector<report::Row> rows;
    for (const FunctionResult &res : results) {
        rows.push_back({res.name,
                        {double(res.cold.cycles), double(res.warm.cycles)}});
    }
    report::barFigure({{"RISCV Cold", "cycles"}, {"RISCV Warm", "cycles"}},
                      rows);
    return 0;
}
