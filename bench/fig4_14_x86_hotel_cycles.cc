/**
 * @file
 * Figure 4.14: number of cycles for the hotel application on the x86
 * simulated system.
 */

#include "bench_common.hh"

using namespace svb;

int
main()
{
    ResultCache cache;
    const auto results = benchutil::sweep(cache, IsaId::Cx86,
                                          workloads::hotelSuite(), true);

    report::figureHeader("Figure 4.14",
                         "cycles, hotel application, x86 (cold/warm)",
                         {SystemConfig::paperConfig(IsaId::Cx86)});

    std::vector<report::Row> rows;
    for (const FunctionResult &res : results) {
        rows.push_back({res.name,
                        {double(res.cold.cycles), double(res.warm.cycles)}});
    }
    report::barFigure({{"x86 Cold", "cycles"}, {"x86 Warm", "cycles"}},
                      rows);
    return 0;
}
