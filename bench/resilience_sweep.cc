/**
 * @file
 * Resilience extension: availability and goodput tails under injected
 * faults, RISC-V vs x86.
 *
 * The load extension (load_tail_latency) assumes every invocation
 * succeeds; this bench drives the same three-function Go mix through
 * the fault model of load/fault.hh and sweeps (ISA x fault scale x
 * client policy). The fault scale multiplies every rate of the base
 * fault config — SVBENCH_FAULTS when set, otherwise the moderate
 * default preset — so scale 0 is the fault-free baseline (availability
 * exactly 100%) and scale 4 a pathological platform. The three client
 * policies compare no client resilience at all, retries with
 * decorrelated-jitter backoff, and retries plus per-attempt timeouts
 * and a per-function circuit breaker.
 *
 * Deterministic: the fault dice, retry jitter, arrivals and warm
 * samples all come from independent seed-derived substreams, so every
 * number (and the fingerprint block) is byte-identical at any
 * SVBENCH_JOBS value.
 */

#include <cstdio>
#include <sstream>

#include "bench_common.hh"
#include "load/load_runner.hh"

using namespace svb;

namespace
{

struct PolicyPoint
{
    const char *label;
    load::RetryPolicy retry;
    load::BreakerConfig breaker;
};

std::vector<load::LoadMixEntry>
goMix()
{
    std::vector<load::LoadMixEntry> mix;
    for (const char *fn : {"fibonacci-go", "aes-go", "auth-go"}) {
        for (const FunctionSpec &spec : workloads::standaloneSuite()) {
            if (spec.name == fn)
                mix.push_back(
                    {spec, &workloads::workloadImpl(spec.workload), 1.0});
        }
    }
    return mix;
}

std::vector<PolicyPoint>
policyPoints()
{
    std::vector<PolicyPoint> pts;
    pts.push_back({"no-retry", {}, {}});
    {
        load::RetryPolicy r;
        r.maxAttempts = 3;
        r.backoffBaseNs = 500'000;    // 500 us
        r.backoffCapNs = 10'000'000;  // 10 ms
        pts.push_back({"retry3-jit", r, {}});
    }
    {
        load::RetryPolicy r;
        r.maxAttempts = 3;
        r.backoffBaseNs = 500'000;
        r.backoffCapNs = 10'000'000;
        r.timeoutNs = 50'000'000; // 50 ms: above any fault-free latency
        load::BreakerConfig b;
        b.enabled = true;
        pts.push_back({"retry3-brk", r, b});
    }
    return pts;
}

} // namespace

int
main()
{
    ResultCache cache;

    // Base rates: the environment override, or the moderate preset so
    // the bench exercises faults even without SVBENCH_FAULTS.
    load::FaultConfig base = load::faultsFromEnv();
    if (!base.any())
        base = load::defaultFaultPreset();

    const std::vector<double> scales = {0.0, 1.0, 4.0};
    const std::vector<PolicyPoint> policies = policyPoints();

    // One scenario list over both ISAs: the whole sweep is a single
    // parallel batch, recorded in submission order.
    std::vector<load::LoadScenario> scenarios;
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (double scale : scales) {
            for (const PolicyPoint &pp : policies) {
                load::LoadScenario s;
                std::ostringstream name;
                // The base rates are in the row key (permil), so an
                // SVBENCH_FAULTS override never reuses stale rows.
                name << "go-mix3;resil;f"
                     << unsigned(base.coldStartFailProb * 1000) << "-"
                     << unsigned(base.crashProb * 1000) << "-"
                     << unsigned(base.stragglerProb * 1000) << "-"
                     << unsigned(base.restoreCorruptProb * 1000)
                     << ";scale" << unsigned(scale) << ";" << pp.label
                     << ";n1500;seed43";
                s.name = name.str();
                s.cluster = benchutil::chapter4Config(isa, false);
                s.mix = goMix();
                s.arrival.kind = load::ArrivalKind::Poisson;
                s.arrival.ratePerSec = 400.0;
                s.pool = {load::KeepAlivePolicy::FixedTtl, 4, 50'000'000};
                s.fault = base.scaled(scale);
                s.retry = pp.retry;
                s.breaker = pp.breaker;
                s.invocations = 1500;
                s.seed = 43;
                scenarios.push_back(std::move(s));
            }
        }
    }

    const std::vector<load::LoadResult> results =
        load::loadSweep(cache, scenarios);

    const size_t perIsa = scales.size() * policies.size();
    for (size_t isaIdx = 0; isaIdx < 2; ++isaIdx) {
        const IsaId isa = isaIdx == 0 ? IsaId::Riscv : IsaId::Cx86;
        report::figureHeader(
            "Resilience extension",
            std::string("availability and goodput tails vs fault scale "
                        "and client policy, ") +
                isaName(isa) +
                " (Poisson 400 rps, 3-function Go mix, 1500 invocations)",
            {SystemConfig::paperConfig(isa)});

        std::vector<report::Row> rows;
        for (size_t k = 0; k < perIsa; ++k) {
            const load::LoadResult &res = results[isaIdx * perIsa + k];
            const size_t scaleIdx = k / policies.size();
            const PolicyPoint &pp = policies[k % policies.size()];
            std::ostringstream label;
            label << "x" << unsigned(scales[scaleIdx]) << "/" << pp.label;
            const double n = double(std::max<uint64_t>(1, res.invocations));
            rows.push_back(
                {label.str(),
                 {res.availabilityPct(),
                  double(res.goodP50Ns) / 1000.0,
                  double(res.goodP99Ns) / 1000.0,
                  double(res.errP99Ns) / 1000.0,
                  100.0 * double(res.coldStarts) / n,
                  double(res.retries), double(res.crashes),
                  double(res.timeouts), double(res.sheds)}});
        }
        report::table({"scenario", "avail %", "good p50 us", "good p99 us",
                       "err p99 us", "cold %", "retries", "crashes",
                       "timeouts", "sheds"},
                      rows);
    }

    // The determinism probe: per-scenario fingerprints over the full
    // and goodput-only distributions, independent of SVBENCH_JOBS.
    std::printf("\nDeterminism fingerprints (stable across SVBENCH_JOBS):\n");
    for (const load::LoadResult &res : results) {
        std::printf("  %-56s histo=%016lx good=%016lx\n",
                    res.scenario.c_str(),
                    (unsigned long)res.histoFingerprint,
                    (unsigned long)res.goodFingerprint);
    }
    return 0;
}
