/**
 * @file
 * Cold-start restore sweep: full vs working-set-aware (REAP-style)
 * snapshot restores per runtime tier x ISA.
 *
 * REAP (Ustiugov et al., PAPERS.md) showed that a serverless cold
 * start touches a small fraction of the snapshot image, and that
 * prefetching exactly that recorded working set while lazily
 * materialising the rest removes most of the restore cost. This bench
 * drives both restore modes of the simulator's CheckpointStore over
 * the standalone Go mix on both ISAs and both emulation tiers
 * (superblock fast-warm on/off):
 *
 *   1. a first emulation run prepares the tuple, publishes the
 *      page-granular snapshot and records the cold request's page
 *      working set;
 *   2. a second, fresh runner restores from the store — fully
 *      (SVBENCH_REAP=0) or working-set-aware (SVBENCH_REAP=1) — and
 *      re-measures the cold and warm request.
 *
 * Reported per cell: the guest-visible cold/warm latencies (which
 * MUST be byte-identical across restore modes — a lazy restore is
 * architecturally invisible; the footer asserts it) and the page
 * accounting that is the point of the exercise: image pages vs
 * unique (CoW-deduplicated) pages vs working-set pages vs pages
 * actually resident after the run.
 *
 * Rows are cached under the "coldrs" schema; every table is printed
 * from rows only, so output is byte-identical at any SVBENCH_JOBS
 * value, fresh or cached.
 *
 * SVBENCH_HOSTTIME=1 appends a host wall-clock restore-latency
 * section (mean finishRestore() time over repeated restores). It is
 * real time, not simulated time — excluded from the deterministic
 * surface and from CI diffs.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_common.hh"
#include "bench_env.hh"
#include "core/checkpoint_store.hh"

using namespace svb;

namespace
{

const std::vector<const char *> kFunctions = {"fibonacci-go", "aes-go",
                                              "auth-go"};

struct Cell
{
    IsaId isa;
    bool fastWarm;
    bool reap;
    FunctionSpec spec;
};

const char *
tierName(bool fast_warm)
{
    return fast_warm ? "fastwarm" : "atomic";
}

const char *
modeName(bool reap)
{
    return reap ? "reap" : "full";
}

std::string
scenarioName(const Cell &cell)
{
    return cell.spec.name + "." + tierName(cell.fastWarm) + "." +
           modeName(cell.reap);
}

ClusterConfig
cellConfig(const Cell &cell)
{
    ClusterConfig cfg = benchutil::chapter4Config(cell.isa,
                                                  /*with_stores=*/false);
    cfg.system.fastWarm = cell.fastWarm;
    return cfg;
}

/**
 * Measure one cell: prepare (or reuse) the checkpoint + working set,
 * then restore on a fresh runner under the cell's restore mode and
 * read the page accounting off its PhysMemory. Serial by design: the
 * REAP gate is latched from SVBENCH_REAP at System construction, so
 * the env flip must not race another cell.
 */
std::map<std::string, uint64_t>
measureCell(const Cell &cell)
{
    setenv("SVBENCH_REAP", cell.reap ? "1" : "0", 1);
    const ClusterConfig cfg = cellConfig(cell);
    const WorkloadImpl &impl = workloads::workloadImpl(cell.spec.workload);

    // Pass 1: make sure the snapshot exists and carries a working set
    // (the first cold request anywhere records it, whatever the mode).
    {
        ExperimentRunner prep(cfg);
        prep.runFunctionEmu(cell.spec, impl);
    }

    // Pass 2: a fresh runner restores from the store under this
    // cell's mode and re-measures.
    ExperimentRunner meas(cfg);
    const EmuResult res = meas.runFunctionEmu(cell.spec, impl);
    PhysMemory &phys = meas.cluster().system().phys();

    // Snapshot-side page counts, straight from the published image.
    CheckpointStore &store = CheckpointStore::global();
    const std::string fp = CheckpointStore::fingerprint(cfg, cell.spec);
    bool claimed = false;
    uint64_t unique_pages = 0;
    uint64_t ws_pages = 0;
    if (auto cp = store.acquire(fp, &claimed)) {
        unique_pages = cp->getScalar("mem.uniquePages");
        if (cp->hasBlob("mem.ws"))
            ws_pages = cp->getBlob("mem.ws").size() / 8;
    } else if (claimed) {
        store.release(fp);
    }

    return {{"coldNs", res.coldNs},
            {"warmNs", res.warmNs},
            {"imagePages", phys.imagePages()},
            {"uniquePages", unique_pages},
            {"wsPages", ws_pages},
            {"prefetched", phys.prefetchedPages()},
            {"faults", phys.lazyFaults()},
            {"residentEnd", phys.residentImagePages()},
            {"ok", res.ok ? 1u : 0u}};
}

/**
 * Host wall-clock restore timing (SVBENCH_HOSTTIME=1 only): mean
 * finishRestore() time over @p iters repeated restores of the cell's
 * snapshot. Non-deterministic by nature; never cached.
 */
double
hostRestoreMicros(const Cell &cell, unsigned iters)
{
    setenv("SVBENCH_REAP", cell.reap ? "1" : "0", 1);
    const ClusterConfig cfg = cellConfig(cell);
    const WorkloadImpl &impl = workloads::workloadImpl(cell.spec.workload);
    CheckpointStore &store = CheckpointStore::global();
    const std::string fp = CheckpointStore::fingerprint(cfg, cell.spec);
    bool claimed = false;
    auto cp = store.acquire(fp, &claimed);
    if (!cp) {
        if (claimed)
            store.release(fp);
        return 0.0;
    }

    ExperimentRunner runner(cfg);
    ServerlessCluster &cl = runner.cluster();
    double total_us = 0.0;
    for (unsigned i = 0; i < iters; ++i) {
        cl.beginRestore();
        cl.deploy(cell.spec, impl);
        std::shared_ptr<const PageImage> img;
        if (cl.system().reapEnabled())
            img = store.imageFor(fp, *cp);
        const auto t0 = std::chrono::steady_clock::now();
        cl.finishRestore(*cp, img);
        const auto t1 = std::chrono::steady_clock::now();
        total_us +=
            std::chrono::duration<double, std::micro>(t1 - t0).count();
    }
    return total_us / iters;
}

} // namespace

int
main()
{
    ResultCache cache;

    std::vector<Cell> cells;
    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        for (bool fast_warm : {true, false}) {
            for (bool reap : {false, true}) {
                for (const char *fn : kFunctions) {
                    for (const FunctionSpec &spec :
                         workloads::standaloneSuite()) {
                        if (spec.name == fn)
                            cells.push_back({isa, fast_warm, reap, spec});
                    }
                }
            }
        }
    }

    // Serial fill: REAP mode is a process-global env latch (see
    // measureCell), so cells never run concurrently. Cached rows make
    // re-runs instant and keep the tables byte-identical either way.
    std::vector<std::map<std::string, uint64_t>> rows;
    for (const Cell &cell : cells) {
        const std::string key =
            cache.coldRestoreKey(cellConfig(cell), scenarioName(cell));
        std::map<std::string, uint64_t> row;
        if (!cache.lookupRow(key, row)) {
            row = measureCell(cell);
            cache.recordRow(key, row);
            cache.lookupRow(key, row); // re-read: print the stored row
        }
        rows.push_back(std::move(row));
    }

    for (IsaId isa : {IsaId::Riscv, IsaId::Cx86}) {
        report::figureHeader(
            "Cold-start restore sweep",
            std::string(isaName(isa)) +
                ": full vs working-set-aware (REAP) snapshot restore",
            {SystemConfig::paperConfig(isa)});
        std::vector<report::Row> table_rows;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].isa != isa)
                continue;
            const std::map<std::string, uint64_t> &row = rows[i];
            table_rows.push_back(
                {scenarioName(cells[i]),
                 {double(row.at("coldNs")) / 1e3,
                  double(row.at("warmNs")) / 1e3,
                  double(row.at("imagePages")),
                  double(row.at("uniquePages")),
                  double(row.at("wsPages")),
                  double(row.at("prefetched")),
                  double(row.at("faults")),
                  double(row.at("residentEnd"))}});
        }
        report::table({"function.tier.mode", "cold us", "warm us",
                       "image pg", "unique pg", "ws pg", "prefetch pg",
                       "fault pg", "resident pg"},
                      table_rows);
    }

    // The byte-identity gate: a lazy restore must be architecturally
    // invisible, so the guest-visible latencies of the full and reap
    // rows of one (isa, tier, function) cell must match exactly.
    bool identical = true;
    std::printf("\nRestore-mode identity (full vs reap, guest time):\n");
    for (size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].reap)
            continue;
        for (size_t j = 0; j < cells.size(); ++j) {
            if (!cells[j].reap || cells[j].isa != cells[i].isa ||
                cells[j].fastWarm != cells[i].fastWarm ||
                cells[j].spec.name != cells[i].spec.name)
                continue;
            const bool same =
                rows[i].at("coldNs") == rows[j].at("coldNs") &&
                rows[i].at("warmNs") == rows[j].at("warmNs");
            identical &= same;
            std::printf("  %-10s %-28s cold=%lu warm=%lu  %s\n",
                        isaName(cells[i].isa),
                        (cells[i].spec.name + "." +
                         tierName(cells[i].fastWarm))
                            .c_str(),
                        (unsigned long)rows[i].at("coldNs"),
                        (unsigned long)rows[i].at("warmNs"),
                        same ? "identical" : "MISMATCH");
        }
    }
    if (!identical) {
        std::fprintf(stderr, "restore modes diverged: a lazy restore "
                             "leaked into guest-visible state\n");
        return 1;
    }

    if (benchenv::flag("SVBENCH_HOSTTIME")) {
        std::printf("\nHost restore latency (mean of 10 restores; wall "
                    "clock, not deterministic):\n");
        for (const Cell &cell : cells) {
            if (cell.isa != IsaId::Riscv || !cell.fastWarm)
                continue;
            std::printf("  %-28s %8.1f us\n", scenarioName(cell).c_str(),
                        hostRestoreMicros(cell, 10));
        }
    }
    return 0;
}
